/**
 * @file
 * Suite orchestration: run (workload x policy) grids and aggregate
 * the metrics the paper's figures report.
 */

#ifndef CHIRP_SIM_RUNNER_HH
#define CHIRP_SIM_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/policy_factory.hh"
#include "sim/sim_config.hh"
#include "sim/sim_stats.hh"
#include "trace/trace_store.hh"
#include "trace/workload_suite.hh"

namespace chirp
{

namespace dist
{
class SweepFabric;
}

class RunJournal;
class Simulator;

/** Creates a fresh policy instance for a given TLB geometry. */
using PolicyFactory = std::function<std::unique_ptr<ReplacementPolicy>(
    std::uint32_t num_sets, std::uint32_t assoc)>;

/**
 * Optional per-job hook for runSuiteMulti: called right after the
 * simulation for (policy @p policy_idx, workload @p workload_idx)
 * completes, while its Simulator (and thus the policy instance with
 * any diagnostic counters) is still alive.  Invoked on the worker
 * thread that ran the job; observers must do their own locking.
 */
using SimObserver = std::function<void(
    std::size_t policy_idx, std::size_t workload_idx,
    const Simulator &sim)>;

/** Result of one (workload, policy) simulation. */
struct WorkloadResult
{
    WorkloadConfig workload;
    SimStats stats;
};

/** Per-job outcome recorded by the suite runner's isolation layer. */
struct JobResult
{
    std::string workload;       //!< workload display name
    std::string policy;         //!< policy tag / suite label
    bool ok = false;            //!< stats are valid
    bool resumed = false;       //!< satisfied from the run journal
    bool hung = false;          //!< flagged by the --job-timeout watchdog
    bool timedOut = false;      //!< cancelled after exceeding the budget
    unsigned attempts = 0;      //!< execution attempts (0 when resumed)
    std::uint64_t wallNs = 0;   //!< wall time across all attempts
    std::string error;          //!< what() of the last failure
};

/** Knobs for the suite runner's failure handling. */
struct ResilienceOptions
{
    /** Extra attempts granted to jobs failing with TransientError. */
    unsigned retries = 1;
    /**
     * Wall-time budget per job attempt; 0 disables the watchdog.
     * Enforcing: an attempt exceeding the budget is cancelled (the
     * simulator aborts at its next cancellation point), recorded as
     * timed-out, and not retried — under the distributed fabric its
     * shard is requeued instead.
     */
    std::uint64_t jobTimeoutMs = 0;
};

/**
 * Thread-safe ledger of every job outcome across a process's suite
 * runs.  Benches share one instance across all their Runner calls and
 * use failureCount() to pick their exit code: a suite with failed
 * jobs still completes and reports, but must not exit 0.
 */
class SuiteHealth
{
  public:
    /** Fold one job outcome into the ledger. */
    void add(const JobResult &job);

    std::uint64_t totalJobs() const;
    std::uint64_t okJobs() const;
    std::uint64_t resumedJobs() const;
    std::uint64_t hungJobs() const;
    std::uint64_t timedOutJobs() const;
    std::uint64_t retriedJobs() const;

    /** Outcomes of every failed job, in completion order. */
    std::vector<JobResult> failures() const;
    std::size_t failureCount() const;

  private:
    mutable std::mutex mutex_;
    std::vector<JobResult> failures_;
    std::uint64_t total_ = 0;
    std::uint64_t ok_ = 0;
    std::uint64_t resumed_ = 0;
    std::uint64_t hung_ = 0;
    std::uint64_t timedOut_ = 0;
    std::uint64_t retried_ = 0;
};

/** Drives suites of workloads through the simulator. */
class Runner
{
  public:
    /**
     * @param jobs worker threads for suite runs: 1 (the default)
     *        keeps the legacy strictly-serial path, 0 means hardware
     *        concurrency, N > 1 shards across N workers.
     */
    explicit Runner(const SimConfig &config, unsigned jobs = 1);

    /** Simulate one workload with a fresh policy from @p factory. */
    SimStats runOne(const WorkloadConfig &workload,
                    const PolicyFactory &factory) const;

    /**
     * Simulate every workload in @p suite using the configured job
     * count.  Progress is reported on stderr under @p label when it
     * is non-empty.  Results are always in suite order and
     * bit-identical whatever the job count: each job gets a fresh
     * policy instance and an independent RNG stream keyed by the
     * workload seed, so no state is shared across jobs.
     *
     * Failure isolation: a throwing job never aborts the suite.  The
     * failed slot keeps zeroed stats, the outcome (error text,
     * attempts, wall time, hung flag) is recorded in the shared
     * SuiteHealth ledger, and a per-job failure summary is logged at
     * the end of the run.  Jobs failing with TransientError are
     * retried per the ResilienceOptions.
     */
    std::vector<WorkloadResult>
    runSuite(const std::vector<WorkloadConfig> &suite,
             const PolicyFactory &factory,
             const std::string &label = "") const;

    /**
     * As runSuite, but with an explicit worker count (0 = hardware
     * concurrency, 1 = serial) overriding the configured one.
     */
    std::vector<WorkloadResult>
    runSuiteParallel(const std::vector<WorkloadConfig> &suite,
                     const PolicyFactory &factory, unsigned jobs,
                     const std::string &label = "") const;

    /**
     * Run every factory in @p factories over @p suite, materializing
     * each workload's record stream exactly once in the trace store
     * and replaying it from flat memory for all P policies — a
     * P-policy sweep costs one generation per workload instead of P.
     * Returns one result vector per factory, each in suite order and
     * bit-identical to runSuite of that factory alone at any job
     * count.  The store's reference to a workload is dropped as soon
     * as all policies have replayed it, so peak memory is bounded by
     * the in-flight jobs, not the suite.  @p observer, when set, is
     * invoked after each job (see SimObserver) and disables the run
     * journal for this call: resumed jobs skip simulation, so any
     * observer-derived data would silently go missing.  @p tags,
     * when non-empty, names each factory in failure summaries
     * (defaults to "p<idx>").  Failure isolation as in runSuite; a
     * recorder failure fails every pending policy of that workload.
     */
    std::vector<std::vector<WorkloadResult>>
    runSuiteMulti(const std::vector<WorkloadConfig> &suite,
                  const std::vector<PolicyFactory> &factories,
                  const std::string &label = "",
                  const SimObserver &observer = {},
                  const std::vector<std::string> &tags = {}) const;

    /** Replay one materialized workload with a fresh policy. */
    SimStats runReplay(const WorkloadConfig &workload,
                       const SharedTrace &trace,
                       const PolicyFactory &factory) const;

    /**
     * Point the trace store's disk tier at @p dir (resets the store;
     * empty disables the tier).  The constructor seeds the tier from
     * CHIRP_TRACE_CACHE.
     */
    void setTraceCacheDir(const std::string &dir);

    /** The materialized-trace store shared by runSuiteMulti calls. */
    TraceStore &traceStore() const { return *store_; }

    const SimConfig &config() const { return config_; }

    /** Worker threads used by runSuite. */
    unsigned jobs() const { return jobs_; }

    /** Change the worker count used by runSuite (see constructor). */
    void setJobs(unsigned jobs) { jobs_ = jobs; }

    /** Retry/watchdog knobs for subsequent suite runs. */
    void setResilience(const ResilienceOptions &opts)
    {
        resilience_ = opts;
    }
    const ResilienceOptions &resilience() const { return resilience_; }

    /**
     * Attach a journal: completed jobs are recorded to it, and jobs
     * it already holds are skipped (resume).  nullptr detaches.
     */
    void setJournal(std::shared_ptr<RunJournal> journal)
    {
        journal_ = std::move(journal);
    }

    /** Replace the health ledger job outcomes are reported to. */
    void setHealth(std::shared_ptr<SuiteHealth> health);

    /**
     * Attach a sweep fabric end.  On a coordinator, distributable
     * runSuiteMulti calls shard their pending workloads across
     * attached workers (merging streamed results into the same
     * slots, journal, and health ledger a local run fills) and fall
     * back to in-process execution for whatever the fabric hands
     * back.  On a worker, suite calls announce themselves and execute
     * granted shards, streaming every job outcome to the coordinator;
     * non-distributable calls (observer attached, CHIRP_FORCE_VIRTUAL,
     * single-factory paths) return zero-shaped results immediately —
     * only the coordinator's CSVs are real.  nullptr detaches.
     */
    void setFabric(std::shared_ptr<dist::SweepFabric> fabric)
    {
        fabric_ = std::move(fabric);
    }

    /** The attached sweep fabric end, if any. */
    const std::shared_ptr<dist::SweepFabric> &fabric() const
    {
        return fabric_;
    }

    /** The health ledger for this runner's suite runs. */
    const std::shared_ptr<SuiteHealth> &health() const
    {
        return health_;
    }

    /** Factory for a default-configured policy of @p kind. */
    static PolicyFactory factoryFor(PolicyKind kind);

  private:
    SimConfig config_;
    unsigned jobs_ = 1;
    ResilienceOptions resilience_;
    /** Shared so copies of a Runner reuse one materialization cache. */
    std::shared_ptr<TraceStore> store_;
    std::shared_ptr<RunJournal> journal_;
    std::shared_ptr<SuiteHealth> health_;
    std::shared_ptr<dist::SweepFabric> fabric_;
};

/**
 * Sum of all per-workload counters in @p results (SimStats::merge
 * over the whole set).  Order-independent on the integer counters, so
 * serial and parallel suite runs aggregate identically.
 */
SimStats aggregateStats(const std::vector<WorkloadResult> &results);

/** Mean MPKI over a result set. */
double averageMpki(const std::vector<WorkloadResult> &results);

/**
 * Percent reduction of mean MPKI relative to a baseline result set
 * (the paper's "reduces MPKI by an average N%" metric).
 */
double mpkiReductionPct(const std::vector<WorkloadResult> &baseline,
                        const std::vector<WorkloadResult> &results);

/**
 * Geometric-mean speedup (percent) over a baseline at a given walk
 * penalty, re-deriving IPC via SimStats::ipcAtPenalty.
 */
double speedupPct(const std::vector<WorkloadResult> &baseline,
                  const std::vector<WorkloadResult> &results,
                  Cycles penalty);

/**
 * Mean percent gain in L2 TLB efficiency over a baseline (Fig 1's
 * summary numbers).  Workloads where the baseline recorded no
 * generations are skipped.
 */
double efficiencyGainPct(const std::vector<WorkloadResult> &baseline,
                         const std::vector<WorkloadResult> &results);

/** Mean prediction-table access rate (Fig 11 summary). */
double meanTableAccessRate(const std::vector<WorkloadResult> &results);

} // namespace chirp

#endif // CHIRP_SIM_RUNNER_HH
