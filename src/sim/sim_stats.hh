/**
 * @file
 * Measured-phase simulation statistics and the derived metrics the
 * paper reports (MPKI, IPC, speedup, table access rate, efficiency).
 */

#ifndef CHIRP_SIM_SIM_STATS_HH
#define CHIRP_SIM_SIM_STATS_HH

#include <cstdint>

#include "util/types.hh"

namespace chirp
{

/** Statistics over the measured (post-warmup) phase of one run. */
struct SimStats
{
    InstCount instructions = 0;
    InstCount warmupInstructions = 0;
    Cycles cycles = 0;

    std::uint64_t l1iTlbAccesses = 0;
    std::uint64_t l1iTlbMisses = 0;
    std::uint64_t l1dTlbAccesses = 0;
    std::uint64_t l1dTlbMisses = 0;
    std::uint64_t l2TlbAccesses = 0;
    std::uint64_t l2TlbHits = 0;
    std::uint64_t l2TlbMisses = 0;

    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;

    /** Replacement-policy prediction-table traffic (Fig 11). */
    std::uint64_t tableReads = 0;
    std::uint64_t tableWrites = 0;

    /** L2 TLB entry live-time fraction (Fig 1). */
    double l2Efficiency = 0.0;

    /** Cycles attributable to page walks during measurement. */
    Cycles walkCycles = 0;

    /** The walk latency the run was simulated with. */
    Cycles walkLatency = 0;

    /** L2 TLB misses per 1000 instructions. */
    double
    mpki() const
    {
        if (instructions == 0)
            return 0.0;
        return static_cast<double>(l2TlbMisses) * 1000.0 /
               static_cast<double>(instructions);
    }

    /** Instructions per cycle. */
    double
    ipc() const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(instructions) /
               static_cast<double>(cycles);
    }

    /**
     * IPC re-derived for a different page-walk penalty: TLB-miss
     * behaviour is independent of the penalty, so cycles decompose
     * into (cycles - walkCycles) + misses * penalty.  This is how
     * the Fig 10 penalty sweep avoids resimulation.
     */
    double
    ipcAtPenalty(Cycles penalty) const
    {
        if (instructions == 0)
            return 0.0;
        const Cycles base = cycles - walkCycles;
        const Cycles total =
            base + static_cast<Cycles>(l2TlbMisses) * penalty;
        return static_cast<double>(instructions) /
               static_cast<double>(total ? total : 1);
    }

    /** Prediction-table accesses per L2 TLB access (Fig 11). */
    double
    tableAccessRate() const
    {
        if (l2TlbAccesses == 0)
            return 0.0;
        return static_cast<double>(tableReads + tableWrites) /
               static_cast<double>(l2TlbAccesses);
    }

    /** Branch mispredictions per 1000 instructions. */
    double
    branchMpki() const
    {
        if (instructions == 0)
            return 0.0;
        return static_cast<double>(branchMispredicts) * 1000.0 /
               static_cast<double>(instructions);
    }

    /**
     * Fold @p other into this run's totals.  Every counter is an
     * exact integer sum, so merging a set of per-workload stats gives
     * the same aggregate regardless of the order jobs completed in —
     * the property the parallel suite runner relies on.  The derived
     * l2Efficiency fraction is combined as an instruction-weighted
     * mean; walkLatency must agree (or be unset on one side).
     */
    SimStats &
    merge(const SimStats &other)
    {
        const double self_weight = static_cast<double>(instructions);
        const double other_weight =
            static_cast<double>(other.instructions);
        if (self_weight + other_weight > 0.0) {
            l2Efficiency = (l2Efficiency * self_weight +
                            other.l2Efficiency * other_weight) /
                           (self_weight + other_weight);
        }

        instructions += other.instructions;
        warmupInstructions += other.warmupInstructions;
        cycles += other.cycles;
        l1iTlbAccesses += other.l1iTlbAccesses;
        l1iTlbMisses += other.l1iTlbMisses;
        l1dTlbAccesses += other.l1dTlbAccesses;
        l1dTlbMisses += other.l1dTlbMisses;
        l2TlbAccesses += other.l2TlbAccesses;
        l2TlbHits += other.l2TlbHits;
        l2TlbMisses += other.l2TlbMisses;
        branches += other.branches;
        branchMispredicts += other.branchMispredicts;
        tableReads += other.tableReads;
        tableWrites += other.tableWrites;
        walkCycles += other.walkCycles;
        if (walkLatency == 0)
            walkLatency = other.walkLatency;
        return *this;
    }

    SimStats &
    operator+=(const SimStats &other)
    {
        return merge(other);
    }
};

inline SimStats
operator+(SimStats lhs, const SimStats &rhs)
{
    lhs.merge(rhs);
    return lhs;
}

} // namespace chirp

#endif // CHIRP_SIM_SIM_STATS_HH
