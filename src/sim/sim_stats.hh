/**
 * @file
 * Measured-phase simulation statistics and the derived metrics the
 * paper reports (MPKI, IPC, speedup, table access rate, efficiency).
 */

#ifndef CHIRP_SIM_SIM_STATS_HH
#define CHIRP_SIM_SIM_STATS_HH

#include <cstdint>

#include "util/types.hh"

namespace chirp
{

/** Statistics over the measured (post-warmup) phase of one run. */
struct SimStats
{
    InstCount instructions = 0;
    InstCount warmupInstructions = 0;
    Cycles cycles = 0;

    std::uint64_t l1iTlbAccesses = 0;
    std::uint64_t l1iTlbMisses = 0;
    std::uint64_t l1dTlbAccesses = 0;
    std::uint64_t l1dTlbMisses = 0;
    std::uint64_t l2TlbAccesses = 0;
    std::uint64_t l2TlbHits = 0;
    std::uint64_t l2TlbMisses = 0;

    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;

    /** Replacement-policy prediction-table traffic (Fig 11). */
    std::uint64_t tableReads = 0;
    std::uint64_t tableWrites = 0;

    /** L2 TLB entry live-time fraction (Fig 1). */
    double l2Efficiency = 0.0;

    /** Cycles attributable to page walks during measurement. */
    Cycles walkCycles = 0;

    /** The walk latency the run was simulated with. */
    Cycles walkLatency = 0;

    /** L2 TLB misses per 1000 instructions. */
    double
    mpki() const
    {
        if (instructions == 0)
            return 0.0;
        return static_cast<double>(l2TlbMisses) * 1000.0 /
               static_cast<double>(instructions);
    }

    /** Instructions per cycle. */
    double
    ipc() const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(instructions) /
               static_cast<double>(cycles);
    }

    /**
     * IPC re-derived for a different page-walk penalty: TLB-miss
     * behaviour is independent of the penalty, so cycles decompose
     * into (cycles - walkCycles) + misses * penalty.  This is how
     * the Fig 10 penalty sweep avoids resimulation.
     */
    double
    ipcAtPenalty(Cycles penalty) const
    {
        if (instructions == 0)
            return 0.0;
        const Cycles base = cycles - walkCycles;
        const Cycles total =
            base + static_cast<Cycles>(l2TlbMisses) * penalty;
        return static_cast<double>(instructions) /
               static_cast<double>(total ? total : 1);
    }

    /** Prediction-table accesses per L2 TLB access (Fig 11). */
    double
    tableAccessRate() const
    {
        if (l2TlbAccesses == 0)
            return 0.0;
        return static_cast<double>(tableReads + tableWrites) /
               static_cast<double>(l2TlbAccesses);
    }

    /** Branch mispredictions per 1000 instructions. */
    double
    branchMpki() const
    {
        if (instructions == 0)
            return 0.0;
        return static_cast<double>(branchMispredicts) * 1000.0 /
               static_cast<double>(instructions);
    }
};

} // namespace chirp

#endif // CHIRP_SIM_SIM_STATS_HH
