/**
 * @file
 * Crash-safe journal of completed suite jobs.
 *
 * A suite run appends one line per finished (workload, policy) job to
 * a sidecar file next to the bench's output ("<output>.journal"),
 * fsyncing each entry.  When a run is killed mid-suite, relaunching
 * with --resume reloads the journal and the Runner skips every job
 * that already completed, so the rerun only pays for the missing
 * jobs yet produces byte-identical CSVs: stats round-trip bit-exactly
 * (doubles are stored as their IEEE-754 bit patterns).
 *
 * Format (plain text, one record per line):
 *
 *   CHIRPJRNL 1 <fingerprint hex16>
 *   J <job key hex16> <17 SimStats fields>
 *
 * The fingerprint hashes everything that determines job results
 * (suite shape, sim config); a journal with a stale fingerprint is
 * silently discarded rather than resumed against the wrong grid.  A
 * torn final line (crash mid-append) is ignored.
 */

#ifndef CHIRP_SIM_RUN_JOURNAL_HH
#define CHIRP_SIM_RUN_JOURNAL_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/sim_stats.hh"
#include "trace/synthetic/workload_factory.hh"

namespace chirp
{

/**
 * Space-separated, bit-exact serialization of every SimStats field
 * (integers in decimal, l2Efficiency as a 16-digit hex bit pattern).
 */
std::string encodeSimStats(const SimStats &stats);

/** Inverse of encodeSimStats; false when fields are missing/garbled. */
bool decodeSimStats(const std::string &text, SimStats &stats);

/** Append-only journal of completed jobs; see the file comment. */
class RunJournal
{
  public:
    /**
     * Open the journal at @p path.  With @p resume set, entries from
     * an existing journal whose header fingerprint equals
     * @p fingerprint are loaded for lookup() and new entries append;
     * otherwise (or on mismatch) the journal restarts empty.
     */
    RunJournal(std::string path, std::uint64_t fingerprint, bool resume);

    ~RunJournal();

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /** Whether the journal file could be opened for appending. */
    bool valid() const { return file_ != nullptr; }

    /** Entries loaded from a resumed journal. */
    std::size_t loaded() const { return loaded_; }

    /** Journal file path. */
    const std::string &path() const { return path_; }

    /**
     * Monotonic sequence number distinguishing the successive suite
     * runs a bench issues (benches run their suites in a fixed order,
     * so the numbering is deterministic across runs of one binary).
     */
    std::uint64_t nextSuiteSeq() { return suiteSeq_.fetch_add(1); }

    /**
     * Stable key for one (suite run, workload, policy) job, combining
     * @p suite_seq with the workload's trace key + name and the
     * policy's index in the factory list.
     */
    static std::uint64_t jobKey(std::uint64_t suite_seq,
                                const WorkloadConfig &workload,
                                std::size_t policy_idx);

    /** Fetch a previously journaled result; false when absent. */
    bool lookup(std::uint64_t key, SimStats &stats) const;

    /** Append one completed job (fsynced before returning). */
    void record(std::uint64_t key, const SimStats &stats);

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::size_t loaded_ = 0;
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, SimStats> entries_;
    std::atomic<std::uint64_t> suiteSeq_{0};
};

} // namespace chirp

#endif // CHIRP_SIM_RUN_JOURNAL_HH
