/**
 * @file
 * Crash-safe journal of completed suite jobs.
 *
 * A suite run appends one line per finished (workload, policy) job to
 * a sidecar file next to the bench's output ("<output>.journal"),
 * fsyncing each entry.  When a run is killed mid-suite, relaunching
 * with --resume reloads the journal and the Runner skips every job
 * that already completed, so the rerun only pays for the missing
 * jobs yet produces byte-identical CSVs: stats round-trip bit-exactly
 * (doubles are stored as their IEEE-754 bit patterns).
 *
 * Format (plain text, one record per line):
 *
 *   CHIRPJRNL 2 <fingerprint hex16> <suite> <suite hash hex16>
 *       <config hash hex16> <schema>     (all on one header line)
 *   J <job key hex16> <17 SimStats fields>
 *
 * The header carries the run's identity field by field — which bench
 * suite, the hash of its workload grid, the hash of the simulator
 * config, and the row-codec schema tag — plus the combined
 * fingerprint.  A journal whose identity does not match the current
 * run is never resumed against the wrong grid: the mismatch is
 * reported naming exactly the fields that diverged, and the stale
 * file is quarantined to "<path>.stale" (mirroring the trace cache's
 * ".corrupt" quarantine) so the evidence survives for inspection
 * instead of being overwritten.  A torn final line (crash
 * mid-append) is ignored.
 */

#ifndef CHIRP_SIM_RUN_JOURNAL_HH
#define CHIRP_SIM_RUN_JOURNAL_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/sim_stats.hh"
#include "trace/synthetic/workload_factory.hh"

namespace chirp
{

/**
 * Space-separated, bit-exact serialization of every SimStats field
 * (integers in decimal, l2Efficiency as a 16-digit hex bit pattern).
 */
std::string encodeSimStats(const SimStats &stats);

/** Inverse of encodeSimStats; false when fields are missing/garbled. */
bool decodeSimStats(const std::string &text, SimStats &stats);

/**
 * Tag of the journal's row codec (the 17-field SimStats encoding);
 * bump alongside encodeSimStats so schema drift is named in mismatch
 * reports instead of silently garbling decodes.
 */
inline constexpr char kSimStatsSchema[] = "simstats17";

/**
 * Field-wise identity of a journaled run: which suite produced it,
 * the shape of its workload grid, the simulator configuration, and
 * the row codec.  Splitting the fingerprint into named fields lets a
 * mismatch report say *what* diverged.
 */
struct JournalIdentity
{
    std::string suite = "unnamed"; //!< bench/suite name (no spaces)
    std::uint64_t suiteHash = 0;   //!< workload-grid shape hash
    std::uint64_t configHash = 0;  //!< simulator-config hash
    std::string schema = kSimStatsSchema; //!< row-codec tag

    /** Combined hash of every field above. */
    std::uint64_t fingerprint() const;
};

/** Append-only journal of completed jobs; see the file comment. */
class RunJournal
{
  public:
    /**
     * Open the journal at @p path.  With @p resume set, entries from
     * an existing journal whose header identity equals @p identity
     * are loaded for lookup() and new entries append; on mismatch
     * the diverging fields are reported, the stale file is
     * quarantined to "<path>.stale", and the journal restarts empty.
     */
    RunJournal(std::string path, JournalIdentity identity, bool resume);

    /** Convenience: an identity carrying only a combined hash. */
    RunJournal(std::string path, std::uint64_t fingerprint, bool resume);

    ~RunJournal();

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /** Whether the journal file could be opened for appending. */
    bool valid() const { return file_ != nullptr; }

    /** Entries loaded from a resumed journal. */
    std::size_t loaded() const { return loaded_; }

    /** Journal file path. */
    const std::string &path() const { return path_; }

    /** The identity stamped into this journal's header. */
    const JournalIdentity &identity() const { return identity_; }

    /**
     * Monotonic sequence number distinguishing the successive suite
     * runs a bench issues (benches run their suites in a fixed order,
     * so the numbering is deterministic across runs of one binary).
     */
    std::uint64_t nextSuiteSeq() { return suiteSeq_.fetch_add(1); }

    /**
     * Stable key for one (suite run, workload, policy) job, combining
     * @p suite_seq with the workload's trace key + name and the
     * policy's index in the factory list.
     */
    static std::uint64_t jobKey(std::uint64_t suite_seq,
                                const WorkloadConfig &workload,
                                std::size_t policy_idx);

    /** Fetch a previously journaled result; false when absent. */
    bool lookup(std::uint64_t key, SimStats &stats) const;

    /** Append one completed job (fsynced before returning). */
    void record(std::uint64_t key, const SimStats &stats);

  private:
    std::string path_;
    JournalIdentity identity_;
    std::FILE *file_ = nullptr;
    std::size_t loaded_ = 0;
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, SimStats> entries_;
    std::atomic<std::uint64_t> suiteSeq_{0};
};

} // namespace chirp

#endif // CHIRP_SIM_RUN_JOURNAL_HH
