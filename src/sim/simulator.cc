#include "sim/simulator.hh"

#include <algorithm>
#include <cstring>
#include <memory>

#include "trace/trace_store.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace chirp
{

namespace
{

/**
 * Column scratch for one event chunk of the batched replay paths: the
 * gathered AccessInfos plus the vaddr/now/page-shift columns the key
 * precompute and the walker consume.
 */
struct EventChunk
{
    AccessInfo infos[kReplayBatch];
    Addr vaddrs[kReplayBatch];
    Addr keys[kReplayBatch];
    std::uint64_t nows[kReplayBatch];
    std::uint8_t shifts[kReplayBatch];
    std::uint8_t hits[kReplayBatch];

    /** Gather @p n events into columns and precompute their keys. */
    void
    gather(const L2Event *events, std::size_t n, Asid asid)
    {
        for (std::size_t j = 0; j < n; ++j) {
            const L2Event &event = events[j];
            AccessInfo &info = infos[j];
            info.pc = event.pc;
            info.vaddr = event.vaddr;
            info.cls = event.cls;
            info.isInstr = event.isInstr != 0;
            vaddrs[j] = event.vaddr;
            nows[j] = event.now;
            shifts[j] = event.pageShift;
        }
        Tlb::keysOf(vaddrs, shifts, n, asid, keys);
    }
};

/**
 * Feed @p walker from a chunk's miss lanes: chunks are hit-dominated,
 * so the scan jumps between the zero bytes of the hits column with
 * the SIMD first-clear kernel instead of testing every lane.  Walk
 * order (ascending j) is identical to the plain loop.
 */
void
walkMisses(PageWalker &walker, const std::uint8_t *hits,
           const Addr *vaddrs, std::size_t n)
{
    std::size_t j = simd::firstClearLane(hits, n);
    while (j < n) {
        walker.walk(vaddrs[j]);
        ++j;
        j += simd::firstClearLane(hits + j, n - j);
    }
}

/**
 * Column scratch for one record chunk of the batched full-pipeline
 * loop: separate i-side and d-side lanes (the d-side lane is compact
 * — only memory records contribute, in record order).
 */
struct StepChunk
{
    AccessInfo iinfos[kReplayBatch];
    Addr ivaddrs[kReplayBatch];
    Addr ikeys[kReplayBatch];
    std::uint64_t inows[kReplayBatch];
    std::uint8_t ishifts[kReplayBatch];
    std::uint8_t ihits[kReplayBatch];
    // Run-compressed i-side lane: runStart[r] is the first record of
    // run r (consecutive same-page fetches), and the i-side columns
    // above are then indexed per run, not per record.  ihits stays
    // per record.
    std::uint16_t irunStart[kReplayBatch];

    AccessInfo dinfos[kReplayBatch];
    Addr dvaddrs[kReplayBatch];
    Addr dkeys[kReplayBatch];
    std::uint64_t dnows[kReplayBatch];
    std::uint8_t dshifts[kReplayBatch];
    std::uint8_t dhits[kReplayBatch];

    // Transpose buffers for sources that only hand out row-major
    // records (generators, interleaved mixes): the chunk is scattered
    // into these columns once so the chunk runner itself is always
    // column-native.  The memory-backed fast path bypasses them and
    // points the runner straight at the shared trace's columns.
    Addr pcs[kReplayBatch];
    Addr eas[kReplayBatch];
    Addr tgs[kReplayBatch];
    std::uint8_t metas[kReplayBatch];
};

} // namespace

Simulator::Simulator(const SimConfig &config,
                     std::unique_ptr<ReplacementPolicy> l2_policy)
    : config_(config), caches_(config.caches), branch_(config.branch)
{
    tlbs_ = std::make_unique<TlbHierarchy>(
        config.tlbs, std::move(l2_policy),
        std::make_unique<FixedLatencyWalker>(config.pageWalkLatency));
}

void
Simulator::checkCancelled() const
{
    if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
        throw JobCancelled(
            "job cancelled: attempt exceeded --job-timeout");
    }
}

Cycles
Simulator::step(const TraceRecord &rec, std::uint64_t now)
{
    Cycles cost = 1;

    // Front end: translate and fetch the instruction itself.
    AccessInfo ifetch;
    ifetch.pc = rec.pc;
    ifetch.vaddr = rec.pc;
    ifetch.cls = rec.cls;
    ifetch.isInstr = true;
    cost += tlbs_->translate(ifetch, activeAsid_, now).stall;
    if (config_.simulateCaches)
        cost += caches_.accessInstr(rec.pc);

    if (config_.simulateBranch && isBranch(rec.cls))
        cost += branch_.onBranch(rec);

    // Back end: data access.
    if (isMemory(rec.cls)) {
        AccessInfo data;
        data.pc = rec.pc;
        data.vaddr = rec.effAddr;
        data.cls = rec.cls;
        data.isInstr = false;
        cost += tlbs_->translate(data, activeAsid_, now).stall;
        if (config_.simulateCaches) {
            cost += caches_.accessData(rec.effAddr,
                                       rec.cls == InstClass::Store);
        }
    }

    // Retirement: the instruction and branch PCs feed the policy
    // histories (speculative history is not modeled; the paper
    // likewise trains at commit with right-path branches only,
    // §VI-E).
    tlbs_->onInstRetired(rec.pc, rec.cls);
    if (isBranch(rec.cls))
        tlbs_->onBranchRetired(rec.pc, rec.cls, rec.taken);

    return cost;
}

SimStats
Simulator::run(TraceSource &source)
{
    return runImpl({&source}, 0, false);
}

SimStats
Simulator::runInterleaved(const std::vector<TraceSource *> &sources,
                          InstCount quantum, bool flush_on_switch)
{
    if (sources.empty())
        chirp_fatal("runInterleaved needs at least one source");
    if (sources.size() > 1 && quantum == 0)
        chirp_fatal("multi-process runs need a nonzero quantum");
    return runImpl(sources, quantum, flush_on_switch);
}

SimStats
Simulator::replayL2(const ColumnarTrace &records,
                    const std::vector<L2Event> &events,
                    const SimStats &base)
{
    tlbs_->reset();

    const InstCount total = records.size();
    const InstCount warmup = static_cast<InstCount>(
        static_cast<double>(total) * config_.warmupFraction);

    Tlb &l2 = tlbs_->l2();
    PageWalker &walker = tlbs_->walker();
    const auto deliver = [&](const L2Event &event) {
        AccessInfo info;
        info.pc = event.pc;
        info.vaddr = event.vaddr;
        info.cls = event.cls;
        info.isInstr = event.isInstr != 0;
        if (!l2.access(info, /*asid=*/1, event.now, event.pageShift))
            walker.walk(event.vaddr);
    };

    // Policy-dependent counter values at the warmup boundary (all
    // zero when the whole run is measured), mirroring runImpl's
    // snapshot, which is taken just before record `warmup` executes:
    // events of that record carry now == warmup and land after it.
    std::uint64_t snapAcc = 0, snapHit = 0, snapMiss = 0;
    std::uint64_t snapReads = 0, snapWrites = 0;
    Cycles snapWalk = 0;
    const auto snapshot = [&] {
        snapAcc = l2.accesses();
        snapHit = l2.hits();
        snapMiss = l2.misses();
        snapReads = l2.policy().tableReads();
        snapWrites = l2.policy().tableWrites();
        snapWalk = walker.totalCycles();
    };

    // A CHiRP instance fed a precomputed signature stream — or a
    // GHRP instance fed a precomputed history stream — consumes
    // nothing from the retire stream: the stream already encodes the
    // history evolution.
    bool wants_retire = l2.policy().wantsRetireEvents();
    if (wants_retire) {
        if (const auto *streamed =
                dynamic_cast<const ChirpPolicy *>(&l2.policy());
            streamed && streamed->hasSignatureStream())
            wants_retire = false;
        if (const auto *streamed =
                dynamic_cast<const GhrpPolicy *>(&l2.policy());
            streamed && streamed->hasHistoryStream())
            wants_retire = false;
    }

    if (wants_retire) {
        // History-based policy: interleave the event stream with the
        // retire stream exactly as step() does — every translation of
        // a record precedes its retire hooks.
        std::size_t e = 0;
        for (InstCount i = 0; i < total; ++i) {
            if ((i & 0xfff) == 0)
                checkCancelled();
            if (i == warmup && warmup != 0)
                snapshot();
            while (e < events.size() && events[e].now == i)
                deliver(events[e++]);
            const Addr pc = records.pc()[i];
            const InstClass cls = records.cls(i);
            tlbs_->onInstRetired(pc, cls);
            if (isBranch(cls))
                tlbs_->onBranchRetired(pc, cls, records.taken(i));
        }
    } else if (traceFormat() != TraceFormat::Legacy) {
        // Retire-blind policy, batched tier: fixed-size chunks with
        // the key column precomputed by the simd kernel and the walker
        // fed from the chunk's miss lanes.  accessBatch is
        // sequential-equivalent and the walker is latency-accounting
        // only, so every counter (and the snapshot, which lands on a
        // chunk boundary by construction) matches the one-at-a-time
        // reference loop below bit for bit.
        auto chunk = std::make_unique<EventChunk>();
        const auto deliverRange = [&](std::size_t lo, std::size_t hi) {
            while (lo < hi) {
                const std::size_t n =
                    std::min<std::size_t>(kReplayBatch, hi - lo);
                checkCancelled();
                chunk->gather(events.data() + lo, n, /*asid=*/1);
                l2.accessBatch(chunk->infos, chunk->keys, chunk->nows,
                               n, /*asid=*/1, chunk->hits);
                walkMisses(walker, chunk->hits, chunk->vaddrs, n);
                lo += n;
            }
        };
        std::size_t e = 0;
        if (warmup > 0 && warmup < total) {
            const auto boundary = std::lower_bound(
                events.begin(), events.end(), warmup,
                [](const L2Event &event, InstCount limit) {
                    return event.now < limit;
                });
            e = static_cast<std::size_t>(boundary - events.begin());
            deliverRange(0, e);
            snapshot();
        }
        deliverRange(e, events.size());
    } else {
        // Retire-blind policy: only the events themselves matter.
        std::size_t e = 0;
        if (warmup > 0 && warmup < total) {
            const auto boundary = std::lower_bound(
                events.begin(), events.end(), warmup,
                [](const L2Event &event, InstCount limit) {
                    return event.now < limit;
                });
            const auto warm =
                static_cast<std::size_t>(boundary - events.begin());
            for (; e < warm; ++e) {
                if ((e & 0xfff) == 0)
                    checkCancelled();
                deliver(events[e]);
            }
            snapshot();
        }
        for (; e < events.size(); ++e) {
            if ((e & 0xfff) == 0)
                checkCancelled();
            deliver(events[e]);
        }
    }

    tlbs_->finalizeEfficiency(total);

    SimStats stats = base;
    stats.l2TlbAccesses = l2.accesses() - snapAcc;
    stats.l2TlbHits = l2.hits() - snapHit;
    stats.l2TlbMisses = l2.misses() - snapMiss;
    stats.tableReads = l2.policy().tableReads() - snapReads;
    stats.tableWrites = l2.policy().tableWrites() - snapWrites;
    stats.walkCycles = walker.totalCycles() - snapWalk;
    // Every record costs the same under every policy except for the
    // L2-dependent stalls: hitLatency per L2 access plus the page
    // walks.  Swap the recording run's contribution for this one's.
    const Cycles hitLat = config_.tlbs.l2.hitLatency;
    stats.cycles = base.cycles - hitLat * base.l2TlbAccesses -
                   base.walkCycles + hitLat * stats.l2TlbAccesses +
                   stats.walkCycles;
    stats.l2Efficiency = l2.efficiency().efficiency();
    return stats;
}

std::vector<SimStats>
Simulator::replayL2Multi(const std::vector<Simulator *> &sims,
                         const ColumnarTrace &records,
                         const std::vector<L2Event> &events,
                         const SimStats &base)
{
    // Must mirror replayL2 exactly: same per-simulator event/retire
    // interleaving, same warmup-snapshot boundaries, same statistics
    // assembly.  replayL2 stays the (tested) reference; the equality
    // tests diff this batch path against it.
    std::vector<SimStats> out(sims.size(), base);
    if (sims.empty())
        return out;

    const InstCount total = records.size();

    // Per-policy replay state: concrete pointers into one simulator
    // plus its warmup boundary and counter snapshot.
    struct Lane
    {
        TlbHierarchy *tlbs = nullptr;
        Tlb *l2 = nullptr;
        PageWalker *walker = nullptr;
        InstCount warmup = 0;
        bool wantsRetire = false;
        bool snapped = false;
        std::uint64_t snapAcc = 0, snapHit = 0, snapMiss = 0;
        std::uint64_t snapReads = 0, snapWrites = 0;
        Cycles snapWalk = 0;
    };
    std::vector<Lane> lanes(sims.size());
    bool any_retire = false;
    for (std::size_t s = 0; s < sims.size(); ++s) {
        if (!sims[s])
            chirp_fatal("replayL2Multi: null simulator");
        Simulator &sim = *sims[s];
        sim.tlbs_->reset();
        Lane &lane = lanes[s];
        lane.tlbs = sim.tlbs_.get();
        lane.l2 = &sim.tlbs_->l2();
        lane.walker = &sim.tlbs_->walker();
        lane.warmup = static_cast<InstCount>(
            static_cast<double>(total) * sim.config_.warmupFraction);
        // As in replayL2: a CHiRP instance fed a precomputed
        // signature stream (or a GHRP instance fed a precomputed
        // history stream) consumes nothing from the retire stream.
        bool wants = lane.l2->policy().wantsRetireEvents();
        if (wants) {
            if (const auto *streamed = dynamic_cast<const ChirpPolicy *>(
                    &lane.l2->policy());
                streamed && streamed->hasSignatureStream())
                wants = false;
            if (const auto *streamed = dynamic_cast<const GhrpPolicy *>(
                    &lane.l2->policy());
                streamed && streamed->hasHistoryStream())
                wants = false;
        }
        lane.wantsRetire = wants;
        any_retire |= wants;
    }

    const auto deliver = [](Lane &lane, const AccessInfo &info,
                            const L2Event &event) {
        if (!lane.l2->access(info, /*asid=*/1, event.now,
                             event.pageShift))
            lane.walker->walk(event.vaddr);
    };
    const auto snapshot = [](Lane &lane) {
        lane.snapAcc = lane.l2->accesses();
        lane.snapHit = lane.l2->hits();
        lane.snapMiss = lane.l2->misses();
        lane.snapReads = lane.l2->policy().tableReads();
        lane.snapWrites = lane.l2->policy().tableWrites();
        lane.snapWalk = lane.walker->totalCycles();
        lane.snapped = true;
    };
    const auto info_of = [](const L2Event &event) {
        AccessInfo info;
        info.pc = event.pc;
        info.vaddr = event.vaddr;
        info.cls = event.cls;
        info.isInstr = event.isInstr != 0;
        return info;
    };

    // The record walk: interleave each record's L2 events before its
    // retire hooks exactly as step() (and replayL2) does.  Driven for
    // every lane on the legacy tier, and for only the retire-consuming
    // lanes on the batched tier (retire-blind lanes take the chunked
    // event path instead; their snapshots land at the same counter
    // values — all events of instructions before the boundary, none
    // at or after it).
    const auto recordWalk = [&](const std::vector<Lane *> &walkers) {
        std::size_t e = 0;
        for (InstCount i = 0; i < total; ++i) {
            for (Lane *lane : walkers) {
                if (!lane->snapped && i == lane->warmup &&
                    lane->warmup != 0)
                    snapshot(*lane);
            }
            while (e < events.size() && events[e].now == i) {
                const AccessInfo info = info_of(events[e]);
                for (Lane *lane : walkers)
                    deliver(*lane, info, events[e]);
                ++e;
            }
            const Addr pc = records.pc()[i];
            const InstClass cls = records.cls(i);
            const bool branch = isBranch(cls);
            for (Lane *lane : walkers) {
                if (!lane->wantsRetire)
                    continue;
                lane->tlbs->onInstRetired(pc, cls);
                if (branch)
                    lane->tlbs->onBranchRetired(pc, cls,
                                                records.taken(i));
            }
        }
    };

    const bool legacy = traceFormat() == TraceFormat::Legacy;
    if (!legacy && any_retire) {
        // Batched tier with at least one history policy in the batch:
        // split the lanes.  Only the retire-consuming lanes pay the
        // per-record walk; retire-blind lanes replay the (much
        // shorter) event stream through the chunked path below.
        std::vector<Lane *> blind, walkers;
        for (Lane &lane : lanes)
            (lane.wantsRetire ? walkers : blind).push_back(&lane);
        auto chunk = std::make_unique<EventChunk>();
        for (std::size_t lo = 0; lo < events.size();
             lo += kReplayBatch) {
            const std::size_t n = std::min<std::size_t>(
                kReplayBatch, events.size() - lo);
            chunk->gather(events.data() + lo, n, /*asid=*/1);
            for (Lane *plane : blind) {
                Lane &lane = *plane;
                const auto deliverPart = [&](std::size_t a,
                                             std::size_t b) {
                    if (a >= b)
                        return;
                    lane.l2->accessBatch(
                        chunk->infos + a, chunk->keys + a,
                        chunk->nows + a, b - a, /*asid=*/1,
                        chunk->hits + a);
                    walkMisses(*lane.walker, chunk->hits + a,
                               chunk->vaddrs + a, b - a);
                };
                std::size_t cut = n;
                if (!lane.snapped && lane.warmup > 0 &&
                    lane.warmup < total &&
                    events[lo + n - 1].now >= lane.warmup) {
                    cut = 0;
                    while (cut < n &&
                           events[lo + cut].now < lane.warmup)
                        ++cut;
                }
                if (cut < n) {
                    deliverPart(0, cut);
                    snapshot(lane);
                    deliverPart(cut, n);
                } else {
                    deliverPart(0, n);
                }
            }
        }
        for (Lane *lane : blind) {
            if (!lane->snapped && lane->warmup > 0 &&
                lane->warmup < total)
                snapshot(*lane);
        }
        recordWalk(walkers);
    } else if (any_retire) {
        std::vector<Lane *> all;
        all.reserve(lanes.size());
        for (Lane &lane : lanes)
            all.push_back(&lane);
        recordWalk(all);
    } else if (!legacy) {
        // Every policy is retire-blind, batched tier: gather each
        // event chunk's columns once (shared by all lanes), then run
        // each lane's accesses through the batch entry.  A lane whose
        // warmup boundary falls inside the chunk splits its batch at
        // the boundary so the snapshot sees exactly the pre-boundary
        // counters, as in the per-event reference loop below.
        auto chunk = std::make_unique<EventChunk>();
        for (std::size_t lo = 0; lo < events.size();
             lo += kReplayBatch) {
            const std::size_t n = std::min<std::size_t>(
                kReplayBatch, events.size() - lo);
            chunk->gather(events.data() + lo, n, /*asid=*/1);
            for (Lane &lane : lanes) {
                const auto deliverPart = [&](std::size_t a,
                                             std::size_t b) {
                    if (a >= b)
                        return;
                    lane.l2->accessBatch(
                        chunk->infos + a, chunk->keys + a,
                        chunk->nows + a, b - a, /*asid=*/1,
                        chunk->hits + a);
                    walkMisses(*lane.walker, chunk->hits + a,
                               chunk->vaddrs + a, b - a);
                };
                std::size_t cut = n;
                if (!lane.snapped && lane.warmup > 0 &&
                    lane.warmup < total &&
                    events[lo + n - 1].now >= lane.warmup) {
                    cut = 0;
                    while (cut < n &&
                           events[lo + cut].now < lane.warmup)
                        ++cut;
                }
                if (cut < n) {
                    deliverPart(0, cut);
                    snapshot(lane);
                    deliverPart(cut, n);
                } else {
                    deliverPart(0, n);
                }
            }
        }
        for (Lane &lane : lanes) {
            if (!lane.snapped && lane.warmup > 0 && lane.warmup < total)
                snapshot(lane);
        }
    } else {
        // Every policy is retire-blind: only the events themselves
        // matter.  Snapshot each lane when its boundary passes; a
        // lane whose boundary lies beyond the last event snapshots
        // after the loop (matching replayL2, which snapshots after
        // delivering every pre-boundary event).
        for (const L2Event &event : events) {
            const AccessInfo info = info_of(event);
            for (Lane &lane : lanes) {
                if (!lane.snapped && lane.warmup > 0 &&
                    lane.warmup < total && event.now >= lane.warmup)
                    snapshot(lane);
                deliver(lane, info, event);
            }
        }
        for (Lane &lane : lanes) {
            if (!lane.snapped && lane.warmup > 0 && lane.warmup < total)
                snapshot(lane);
        }
    }

    for (std::size_t s = 0; s < sims.size(); ++s) {
        Lane &lane = lanes[s];
        lane.tlbs->finalizeEfficiency(total);
        SimStats &stats = out[s];
        stats.l2TlbAccesses = lane.l2->accesses() - lane.snapAcc;
        stats.l2TlbHits = lane.l2->hits() - lane.snapHit;
        stats.l2TlbMisses = lane.l2->misses() - lane.snapMiss;
        stats.tableReads =
            lane.l2->policy().tableReads() - lane.snapReads;
        stats.tableWrites =
            lane.l2->policy().tableWrites() - lane.snapWrites;
        stats.walkCycles = lane.walker->totalCycles() - lane.snapWalk;
        const Cycles hitLat = sims[s]->config_.tlbs.l2.hitLatency;
        stats.cycles = base.cycles - hitLat * base.l2TlbAccesses -
                       base.walkCycles + hitLat * stats.l2TlbAccesses +
                       stats.walkCycles;
        stats.l2Efficiency = lane.l2->efficiency().efficiency();
    }
    return out;
}

SimStats
Simulator::runImpl(const std::vector<TraceSource *> &sources,
                   InstCount quantum, bool flush_on_switch)
{
    for (TraceSource *source : sources)
        source->reset();
    tlbs_->reset();
    caches_.reset();
    branch_.reset();

    InstCount expected = 0;
    for (const TraceSource *source : sources)
        expected += source->expectedLength();
    const InstCount warmup = static_cast<InstCount>(
        static_cast<double>(expected) * config_.warmupFraction);

    SimStats stats;
    stats.walkLatency = config_.pageWalkLatency;
    stats.warmupInstructions = warmup;

    // Counter snapshots taken at the warmup boundary; measured-phase
    // numbers are the difference against the end of the run.
    struct Snapshot
    {
        Cycles cycles = 0;
        std::uint64_t l1iAcc = 0, l1iMiss = 0;
        std::uint64_t l1dAcc = 0, l1dMiss = 0;
        std::uint64_t l2Acc = 0, l2Hit = 0, l2Miss = 0;
        std::uint64_t branches = 0, mispredicts = 0;
        std::uint64_t tReads = 0, tWrites = 0;
        Cycles walkCycles = 0;
    } snap;
    bool snapped = (warmup == 0);

    Cycles cycles = 0;
    InstCount retired = 0;
    const auto takeSnapshot = [&]() {
        snap.cycles = cycles;
        snap.l1iAcc = tlbs_->l1i().accesses();
        snap.l1iMiss = tlbs_->l1i().misses();
        snap.l1dAcc = tlbs_->l1d().accesses();
        snap.l1dMiss = tlbs_->l1d().misses();
        snap.l2Acc = tlbs_->l2().accesses();
        snap.l2Hit = tlbs_->l2().hits();
        snap.l2Miss = tlbs_->l2().misses();
        snap.branches = branch_.branches();
        snap.mispredicts = branch_.mispredicts();
        snap.tReads = tlbs_->l2().policy().tableReads();
        snap.tWrites = tlbs_->l2().policy().tableWrites();
        snap.walkCycles = tlbs_->walker().totalCycles();
        snapped = true;
    };
    std::size_t active = 0;
    InstCount quantum_left = quantum;
    std::vector<bool> done(sources.size(), false);
    std::size_t live_sources = sources.size();
    activeAsid_ = static_cast<Asid>(active + 1);
    // Records are pulled in fixed-size chunks so the per-record
    // virtual dispatch (and, for memory-backed sources, all generator
    // branching) stays out of the instruction loop.  Chunks never
    // cross a context-switch boundary, so the interleaving schedule
    // is identical to the old one-record pull.
    TraceRecord batch[kReplayBatch];

    // Batched tier: each chunk runs an L1-TLB pre-pass (both L1 TLBs
    // are plain LRU and evolve independently of everything below
    // them, so their lookups batch safely), then assembles costs per
    // record in original order, descending to the shared L2/walker
    // and caches only where the pre-pass recorded a miss.  Chunks are
    // split at the warmup boundary so the snapshot below observes
    // exactly the pre-boundary counters.  CHIRP_TRACE_FORMAT=legacy
    // keeps the one-record-at-a-time step() reference loop.
    const bool batched = traceFormat() != TraceFormat::Legacy;
    auto scratch = batched ? std::make_unique<StepChunk>() : nullptr;
    // Same-page i-run compression needs the L1i's repeat hits to be
    // provable policy no-ops; that holds only for the devirtualized
    // plain-LRU dispatch (CHIRP_FORCE_VIRTUAL clears it).
    const bool irun = batched && tlbs_->l1i().hasLruMemo();
    const auto runChunk = [&](const Addr *pc, const Addr *ea,
                              const Addr *tg, const std::uint8_t *meta,
                              std::size_t m,
                              std::uint64_t base_now) -> Cycles {
        StepChunk &c = *scratch;
        // Pass A: i-side L1 lookups for the whole chunk.  Sequential
        // fetch makes the i-stream long runs of same-page addresses;
        // with the plain-LRU L1i every post-first access of a run is
        // a provable repeat hit, so each run lowers to one
        // accessRun() probe plus bulk accounting.  The forced-virtual
        // reference build (and any non-LRU L1) keeps the per-record
        // batch, which the dispatch-equality tests compare against.
        if (irun) {
            std::size_t nr = 0;
            for (std::size_t j = 0; j < m;) {
                const Addr page = pc[j] >> kPageShift;
                std::size_t k = j + 1;
                while (k < m && (pc[k] >> kPageShift) == page)
                    ++k;
                AccessInfo &info = c.iinfos[nr];
                info.pc = pc[j];
                info.vaddr = pc[j];
                info.cls = static_cast<InstClass>(
                    meta[j] & ColumnarTrace::kClsMask);
                info.isInstr = true;
                c.ivaddrs[nr] = pc[j];
                c.inows[nr] = base_now + j;
                c.ishifts[nr] = static_cast<std::uint8_t>(
                    tlbs_->pageShiftFor(pc[j]));
                c.irunStart[nr] = static_cast<std::uint16_t>(j);
                ++nr;
                j = k;
            }
            Tlb::keysOf(c.ivaddrs, c.ishifts, nr, activeAsid_, c.ikeys);
            Tlb &l1i = tlbs_->l1i();
            for (std::size_t r = 0; r < nr; ++r) {
                const std::size_t start = c.irunStart[r];
                const std::size_t len =
                    (r + 1 < nr ? c.irunStart[r + 1] : m) - start;
                c.ihits[start] = l1i.accessRun(c.iinfos[r], c.ikeys[r],
                                               activeAsid_, c.inows[r],
                                               len)
                                     ? 1
                                     : 0;
                // Post-first accesses of a run always hit.
                std::memset(c.ihits + start + 1, 1, len - 1);
            }
        } else {
            for (std::size_t j = 0; j < m; ++j) {
                AccessInfo &info = c.iinfos[j];
                info.pc = pc[j];
                info.vaddr = pc[j];
                info.cls = static_cast<InstClass>(
                    meta[j] & ColumnarTrace::kClsMask);
                info.isInstr = true;
                c.ivaddrs[j] = pc[j];
                c.inows[j] = base_now + j;
                c.ishifts[j] = static_cast<std::uint8_t>(
                    tlbs_->pageShiftFor(pc[j]));
            }
            Tlb::keysOf(c.ivaddrs, c.ishifts, m, activeAsid_, c.ikeys);
            tlbs_->l1i().accessBatch(c.iinfos, c.ikeys, c.inows, m,
                                     activeAsid_, c.ihits);
        }
        // Pass B: d-side L1 lookups for the chunk's memory records.
        std::size_t nd = 0;
        for (std::size_t j = 0; j < m; ++j) {
            const InstClass cls = static_cast<InstClass>(
                meta[j] & ColumnarTrace::kClsMask);
            if (!isMemory(cls))
                continue;
            AccessInfo &info = c.dinfos[nd];
            info.pc = pc[j];
            info.vaddr = ea[j];
            info.cls = cls;
            info.isInstr = false;
            c.dvaddrs[nd] = ea[j];
            c.dnows[nd] = base_now + j;
            c.dshifts[nd] = static_cast<std::uint8_t>(
                tlbs_->pageShiftFor(ea[j]));
            ++nd;
        }
        Tlb::keysOf(c.dvaddrs, c.dshifts, nd, activeAsid_, c.dkeys);
        tlbs_->l1d().accessBatch(c.dinfos, c.dkeys, c.dnows, nd,
                                 activeAsid_, c.dhits);
        // Pass C: per-record cost assembly in original order; the
        // shared structures below the L1s (L2 TLB, walker, caches,
        // branch unit, retire hooks) see the exact step() sequence.
        Cycles cost = 0;
        std::size_t d = 0;
        for (std::size_t j = 0; j < m; ++j) {
            const InstClass cls = static_cast<InstClass>(
                meta[j] & ColumnarTrace::kClsMask);
            const bool taken = (meta[j] & ColumnarTrace::kTakenBit) != 0;
            const std::uint64_t now = base_now + j;
            cost += 1;
            if (!c.ihits[j]) {
                // Misses are rare (and, in run-compressed mode, only
                // land on run starts), so the access info is rebuilt
                // here instead of being staged per record in Pass A.
                AccessInfo info;
                info.pc = pc[j];
                info.vaddr = pc[j];
                info.cls = cls;
                info.isInstr = true;
                cost += tlbs_->translateL1Miss(
                    info, activeAsid_, now,
                    static_cast<unsigned>(tlbs_->pageShiftFor(pc[j])));
            }
            if (config_.simulateCaches)
                cost += caches_.accessInstr(pc[j]);
            if (config_.simulateBranch && isBranch(cls)) {
                TraceRecord rec;
                rec.pc = pc[j];
                rec.effAddr = ea[j];
                rec.target = tg[j];
                rec.cls = cls;
                rec.taken = taken;
                cost += branch_.onBranch(rec);
            }
            if (isMemory(cls)) {
                if (!c.dhits[d]) {
                    cost += tlbs_->translateL1Miss(
                        c.dinfos[d], activeAsid_, now, c.dshifts[d]);
                }
                if (config_.simulateCaches) {
                    cost += caches_.accessData(
                        ea[j], cls == InstClass::Store);
                }
                ++d;
            }
            tlbs_->onInstRetired(pc[j], cls);
            if (isBranch(cls))
                tlbs_->onBranchRetired(pc[j], cls, taken);
        }
        return cost;
    };

    // Zero-copy fast path: a single memory-backed source replayed in
    // batched mode is driven straight off the shared trace's columns
    // — no per-chunk gather into row-major records and no transpose
    // back into column scratch.  Context-switch scheduling never
    // applies to a single source, so only the warmup clamp and the
    // cancellation poll survive from the generic loop.
    MemoryTraceSource *mem =
        (batched && sources.size() == 1)
            ? dynamic_cast<MemoryTraceSource *>(sources[0])
            : nullptr;
    if (mem) {
        const ColumnarTrace &trace = *mem->records();
        const std::size_t n = trace.size();
        std::size_t pos = 0;
        while (pos < n) {
            checkCancelled();
            if (!snapped && retired >= warmup)
                takeSnapshot();
            std::size_t m = std::min<std::size_t>(kReplayBatch, n - pos);
            if (!snapped && retired + m > warmup)
                m = static_cast<std::size_t>(warmup - retired);
            cycles += runChunk(trace.pc() + pos, trace.effAddr() + pos,
                               trace.target() + pos, trace.meta() + pos,
                               m, retired);
            retired += m;
            pos += m;
        }
        live_sources = 0;
    }

    while (live_sources > 0) {
        // One relaxed load per 256-record batch: cheap enough to be
        // invisible, frequent enough that a fired --job-timeout
        // abandons the run within microseconds.
        checkCancelled();
        // Round-robin context switches every `quantum` instructions.
        if (sources.size() > 1 && quantum_left == 0) {
            std::size_t next = active;
            do {
                next = (next + 1) % sources.size();
            } while (done[next]);
            if (next != active && flush_on_switch) {
                // Non-ASID hardware invalidates translations on a
                // context switch (the switch's other costs are not
                // modeled).
                tlbs_->l1i().flushAll(retired);
                tlbs_->l1d().flushAll(retired);
                tlbs_->l2().flushAll(retired);
            }
            active = next;
            activeAsid_ = static_cast<Asid>(active + 1);
            quantum_left = quantum;
        }
        std::size_t want = kReplayBatch;
        if (sources.size() > 1)
            want = static_cast<std::size_t>(
                std::min<InstCount>(want, quantum_left));
        const std::size_t got = sources[active]->nextBatch(batch, want);
        if (got == 0) {
            done[active] = true;
            --live_sources;
            quantum_left = 0;
            continue;
        }
        if (sources.size() > 1)
            quantum_left -= got;
        std::size_t done = 0;
        while (done < got) {
            if (!snapped && retired >= warmup)
                takeSnapshot();
            // Clamp the sub-chunk to the warmup boundary so the next
            // pass of this loop snapshots exactly there.
            std::size_t m = got - done;
            if (!snapped && retired + m > warmup)
                m = static_cast<std::size_t>(warmup - retired);
            if (batched) {
                StepChunk &c = *scratch;
                for (std::size_t j = 0; j < m; ++j) {
                    const TraceRecord &rec = batch[done + j];
                    c.pcs[j] = rec.pc;
                    c.eas[j] = rec.effAddr;
                    c.tgs[j] = rec.target;
                    c.metas[j] =
                        ColumnarTrace::packMeta(rec.cls, rec.taken);
                }
                cycles += runChunk(c.pcs, c.eas, c.tgs, c.metas, m,
                                   retired);
            } else {
                for (std::size_t i = 0; i < m; ++i)
                    cycles += step(batch[done + i], retired + i);
            }
            retired += m;
            done += m;
        }
    }
    if (!snapped) {
        // Degenerate short trace: everything is warmup; measure all.
        snap = Snapshot{};
    }

    tlbs_->finalizeEfficiency(retired);

    stats.instructions = retired - (snapped ? warmup : 0);
    if (retired < warmup)
        stats.instructions = retired;
    stats.cycles = cycles - snap.cycles;
    stats.l1iTlbAccesses = tlbs_->l1i().accesses() - snap.l1iAcc;
    stats.l1iTlbMisses = tlbs_->l1i().misses() - snap.l1iMiss;
    stats.l1dTlbAccesses = tlbs_->l1d().accesses() - snap.l1dAcc;
    stats.l1dTlbMisses = tlbs_->l1d().misses() - snap.l1dMiss;
    stats.l2TlbAccesses = tlbs_->l2().accesses() - snap.l2Acc;
    stats.l2TlbHits = tlbs_->l2().hits() - snap.l2Hit;
    stats.l2TlbMisses = tlbs_->l2().misses() - snap.l2Miss;
    stats.branches = branch_.branches() - snap.branches;
    stats.branchMispredicts = branch_.mispredicts() - snap.mispredicts;
    stats.tableReads = tlbs_->l2().policy().tableReads() - snap.tReads;
    stats.tableWrites = tlbs_->l2().policy().tableWrites() - snap.tWrites;
    stats.walkCycles = tlbs_->walker().totalCycles() - snap.walkCycles;
    stats.l2Efficiency = tlbs_->l2().efficiency().efficiency();
    return stats;
}

} // namespace chirp
