#include "sim/simulator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chirp
{

Simulator::Simulator(const SimConfig &config,
                     std::unique_ptr<ReplacementPolicy> l2_policy)
    : config_(config), caches_(config.caches), branch_(config.branch)
{
    tlbs_ = std::make_unique<TlbHierarchy>(
        config.tlbs, std::move(l2_policy),
        std::make_unique<FixedLatencyWalker>(config.pageWalkLatency));
}

void
Simulator::checkCancelled() const
{
    if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
        throw JobCancelled(
            "job cancelled: attempt exceeded --job-timeout");
    }
}

Cycles
Simulator::step(const TraceRecord &rec, std::uint64_t now)
{
    Cycles cost = 1;

    // Front end: translate and fetch the instruction itself.
    AccessInfo ifetch;
    ifetch.pc = rec.pc;
    ifetch.vaddr = rec.pc;
    ifetch.cls = rec.cls;
    ifetch.isInstr = true;
    cost += tlbs_->translate(ifetch, activeAsid_, now).stall;
    if (config_.simulateCaches)
        cost += caches_.accessInstr(rec.pc);

    if (config_.simulateBranch && isBranch(rec.cls))
        cost += branch_.onBranch(rec);

    // Back end: data access.
    if (isMemory(rec.cls)) {
        AccessInfo data;
        data.pc = rec.pc;
        data.vaddr = rec.effAddr;
        data.cls = rec.cls;
        data.isInstr = false;
        cost += tlbs_->translate(data, activeAsid_, now).stall;
        if (config_.simulateCaches) {
            cost += caches_.accessData(rec.effAddr,
                                       rec.cls == InstClass::Store);
        }
    }

    // Retirement: the instruction and branch PCs feed the policy
    // histories (speculative history is not modeled; the paper
    // likewise trains at commit with right-path branches only,
    // §VI-E).
    tlbs_->onInstRetired(rec.pc, rec.cls);
    if (isBranch(rec.cls))
        tlbs_->onBranchRetired(rec.pc, rec.cls, rec.taken);

    return cost;
}

SimStats
Simulator::run(TraceSource &source)
{
    return runImpl({&source}, 0, false);
}

SimStats
Simulator::runInterleaved(const std::vector<TraceSource *> &sources,
                          InstCount quantum, bool flush_on_switch)
{
    if (sources.empty())
        chirp_fatal("runInterleaved needs at least one source");
    if (sources.size() > 1 && quantum == 0)
        chirp_fatal("multi-process runs need a nonzero quantum");
    return runImpl(sources, quantum, flush_on_switch);
}

SimStats
Simulator::replayL2(const std::vector<TraceRecord> &records,
                    const std::vector<L2Event> &events,
                    const SimStats &base)
{
    tlbs_->reset();

    const InstCount total = records.size();
    const InstCount warmup = static_cast<InstCount>(
        static_cast<double>(total) * config_.warmupFraction);

    Tlb &l2 = tlbs_->l2();
    PageWalker &walker = tlbs_->walker();
    const auto deliver = [&](const L2Event &event) {
        AccessInfo info;
        info.pc = event.pc;
        info.vaddr = event.vaddr;
        info.cls = event.cls;
        info.isInstr = event.isInstr != 0;
        if (!l2.access(info, /*asid=*/1, event.now, event.pageShift))
            walker.walk(event.vaddr);
    };

    // Policy-dependent counter values at the warmup boundary (all
    // zero when the whole run is measured), mirroring runImpl's
    // snapshot, which is taken just before record `warmup` executes:
    // events of that record carry now == warmup and land after it.
    std::uint64_t snapAcc = 0, snapHit = 0, snapMiss = 0;
    std::uint64_t snapReads = 0, snapWrites = 0;
    Cycles snapWalk = 0;
    const auto snapshot = [&] {
        snapAcc = l2.accesses();
        snapHit = l2.hits();
        snapMiss = l2.misses();
        snapReads = l2.policy().tableReads();
        snapWrites = l2.policy().tableWrites();
        snapWalk = walker.totalCycles();
    };

    // A CHiRP instance fed a precomputed signature stream consumes
    // nothing from the retire stream: the stream already encodes the
    // history evolution.
    bool wants_retire = l2.policy().wantsRetireEvents();
    if (wants_retire) {
        const auto *streamed =
            dynamic_cast<const ChirpPolicy *>(&l2.policy());
        if (streamed && streamed->hasSignatureStream())
            wants_retire = false;
    }

    if (wants_retire) {
        // History-based policy: interleave the event stream with the
        // retire stream exactly as step() does — every translation of
        // a record precedes its retire hooks.
        std::size_t e = 0;
        for (InstCount i = 0; i < total; ++i) {
            if ((i & 0xfff) == 0)
                checkCancelled();
            if (i == warmup && warmup != 0)
                snapshot();
            while (e < events.size() && events[e].now == i)
                deliver(events[e++]);
            const TraceRecord &rec = records[i];
            tlbs_->onInstRetired(rec.pc, rec.cls);
            if (isBranch(rec.cls))
                tlbs_->onBranchRetired(rec.pc, rec.cls, rec.taken);
        }
    } else {
        // Retire-blind policy: only the events themselves matter.
        std::size_t e = 0;
        if (warmup > 0 && warmup < total) {
            const auto boundary = std::lower_bound(
                events.begin(), events.end(), warmup,
                [](const L2Event &event, InstCount limit) {
                    return event.now < limit;
                });
            const auto warm =
                static_cast<std::size_t>(boundary - events.begin());
            for (; e < warm; ++e) {
                if ((e & 0xfff) == 0)
                    checkCancelled();
                deliver(events[e]);
            }
            snapshot();
        }
        for (; e < events.size(); ++e) {
            if ((e & 0xfff) == 0)
                checkCancelled();
            deliver(events[e]);
        }
    }

    tlbs_->finalizeEfficiency(total);

    SimStats stats = base;
    stats.l2TlbAccesses = l2.accesses() - snapAcc;
    stats.l2TlbHits = l2.hits() - snapHit;
    stats.l2TlbMisses = l2.misses() - snapMiss;
    stats.tableReads = l2.policy().tableReads() - snapReads;
    stats.tableWrites = l2.policy().tableWrites() - snapWrites;
    stats.walkCycles = walker.totalCycles() - snapWalk;
    // Every record costs the same under every policy except for the
    // L2-dependent stalls: hitLatency per L2 access plus the page
    // walks.  Swap the recording run's contribution for this one's.
    const Cycles hitLat = config_.tlbs.l2.hitLatency;
    stats.cycles = base.cycles - hitLat * base.l2TlbAccesses -
                   base.walkCycles + hitLat * stats.l2TlbAccesses +
                   stats.walkCycles;
    stats.l2Efficiency = l2.efficiency().efficiency();
    return stats;
}

std::vector<SimStats>
Simulator::replayL2Multi(const std::vector<Simulator *> &sims,
                         const std::vector<TraceRecord> &records,
                         const std::vector<L2Event> &events,
                         const SimStats &base)
{
    // Must mirror replayL2 exactly: same per-simulator event/retire
    // interleaving, same warmup-snapshot boundaries, same statistics
    // assembly.  replayL2 stays the (tested) reference; the equality
    // tests diff this batch path against it.
    std::vector<SimStats> out(sims.size(), base);
    if (sims.empty())
        return out;

    const InstCount total = records.size();

    // Per-policy replay state: concrete pointers into one simulator
    // plus its warmup boundary and counter snapshot.
    struct Lane
    {
        TlbHierarchy *tlbs = nullptr;
        Tlb *l2 = nullptr;
        PageWalker *walker = nullptr;
        InstCount warmup = 0;
        bool wantsRetire = false;
        bool snapped = false;
        std::uint64_t snapAcc = 0, snapHit = 0, snapMiss = 0;
        std::uint64_t snapReads = 0, snapWrites = 0;
        Cycles snapWalk = 0;
    };
    std::vector<Lane> lanes(sims.size());
    bool any_retire = false;
    for (std::size_t s = 0; s < sims.size(); ++s) {
        if (!sims[s])
            chirp_fatal("replayL2Multi: null simulator");
        Simulator &sim = *sims[s];
        sim.tlbs_->reset();
        Lane &lane = lanes[s];
        lane.tlbs = sim.tlbs_.get();
        lane.l2 = &sim.tlbs_->l2();
        lane.walker = &sim.tlbs_->walker();
        lane.warmup = static_cast<InstCount>(
            static_cast<double>(total) * sim.config_.warmupFraction);
        // As in replayL2: a CHiRP instance fed a precomputed
        // signature stream consumes nothing from the retire stream.
        bool wants = lane.l2->policy().wantsRetireEvents();
        if (wants) {
            const auto *streamed =
                dynamic_cast<const ChirpPolicy *>(&lane.l2->policy());
            if (streamed && streamed->hasSignatureStream())
                wants = false;
        }
        lane.wantsRetire = wants;
        any_retire |= wants;
    }

    const auto deliver = [](Lane &lane, const AccessInfo &info,
                            const L2Event &event) {
        if (!lane.l2->access(info, /*asid=*/1, event.now,
                             event.pageShift))
            lane.walker->walk(event.vaddr);
    };
    const auto snapshot = [](Lane &lane) {
        lane.snapAcc = lane.l2->accesses();
        lane.snapHit = lane.l2->hits();
        lane.snapMiss = lane.l2->misses();
        lane.snapReads = lane.l2->policy().tableReads();
        lane.snapWrites = lane.l2->policy().tableWrites();
        lane.snapWalk = lane.walker->totalCycles();
        lane.snapped = true;
    };
    const auto info_of = [](const L2Event &event) {
        AccessInfo info;
        info.pc = event.pc;
        info.vaddr = event.vaddr;
        info.cls = event.cls;
        info.isInstr = event.isInstr != 0;
        return info;
    };

    if (any_retire) {
        // At least one policy consumes the retire stream: walk the
        // records once, interleaving each record's L2 events before
        // its retire hooks exactly as step() (and replayL2) does.
        // Retire-blind lanes ride along, receiving only the events;
        // their snapshot lands at the same counter values as the
        // pure-event path below (all events of instructions before
        // the boundary, none at or after it).
        std::size_t e = 0;
        for (InstCount i = 0; i < total; ++i) {
            for (Lane &lane : lanes) {
                if (!lane.snapped && i == lane.warmup &&
                    lane.warmup != 0)
                    snapshot(lane);
            }
            while (e < events.size() && events[e].now == i) {
                const AccessInfo info = info_of(events[e]);
                for (Lane &lane : lanes)
                    deliver(lane, info, events[e]);
                ++e;
            }
            const TraceRecord &rec = records[i];
            const bool branch = isBranch(rec.cls);
            for (Lane &lane : lanes) {
                if (!lane.wantsRetire)
                    continue;
                lane.tlbs->onInstRetired(rec.pc, rec.cls);
                if (branch)
                    lane.tlbs->onBranchRetired(rec.pc, rec.cls,
                                               rec.taken);
            }
        }
    } else {
        // Every policy is retire-blind: only the events themselves
        // matter.  Snapshot each lane when its boundary passes; a
        // lane whose boundary lies beyond the last event snapshots
        // after the loop (matching replayL2, which snapshots after
        // delivering every pre-boundary event).
        for (const L2Event &event : events) {
            const AccessInfo info = info_of(event);
            for (Lane &lane : lanes) {
                if (!lane.snapped && lane.warmup > 0 &&
                    lane.warmup < total && event.now >= lane.warmup)
                    snapshot(lane);
                deliver(lane, info, event);
            }
        }
        for (Lane &lane : lanes) {
            if (!lane.snapped && lane.warmup > 0 && lane.warmup < total)
                snapshot(lane);
        }
    }

    for (std::size_t s = 0; s < sims.size(); ++s) {
        Lane &lane = lanes[s];
        lane.tlbs->finalizeEfficiency(total);
        SimStats &stats = out[s];
        stats.l2TlbAccesses = lane.l2->accesses() - lane.snapAcc;
        stats.l2TlbHits = lane.l2->hits() - lane.snapHit;
        stats.l2TlbMisses = lane.l2->misses() - lane.snapMiss;
        stats.tableReads =
            lane.l2->policy().tableReads() - lane.snapReads;
        stats.tableWrites =
            lane.l2->policy().tableWrites() - lane.snapWrites;
        stats.walkCycles = lane.walker->totalCycles() - lane.snapWalk;
        const Cycles hitLat = sims[s]->config_.tlbs.l2.hitLatency;
        stats.cycles = base.cycles - hitLat * base.l2TlbAccesses -
                       base.walkCycles + hitLat * stats.l2TlbAccesses +
                       stats.walkCycles;
        stats.l2Efficiency = lane.l2->efficiency().efficiency();
    }
    return out;
}

SimStats
Simulator::runImpl(const std::vector<TraceSource *> &sources,
                   InstCount quantum, bool flush_on_switch)
{
    for (TraceSource *source : sources)
        source->reset();
    tlbs_->reset();
    caches_.reset();
    branch_.reset();

    InstCount expected = 0;
    for (const TraceSource *source : sources)
        expected += source->expectedLength();
    const InstCount warmup = static_cast<InstCount>(
        static_cast<double>(expected) * config_.warmupFraction);

    SimStats stats;
    stats.walkLatency = config_.pageWalkLatency;
    stats.warmupInstructions = warmup;

    // Counter snapshots taken at the warmup boundary; measured-phase
    // numbers are the difference against the end of the run.
    struct Snapshot
    {
        Cycles cycles = 0;
        std::uint64_t l1iAcc = 0, l1iMiss = 0;
        std::uint64_t l1dAcc = 0, l1dMiss = 0;
        std::uint64_t l2Acc = 0, l2Hit = 0, l2Miss = 0;
        std::uint64_t branches = 0, mispredicts = 0;
        std::uint64_t tReads = 0, tWrites = 0;
        Cycles walkCycles = 0;
    } snap;
    bool snapped = (warmup == 0);

    Cycles cycles = 0;
    InstCount retired = 0;
    std::size_t active = 0;
    InstCount quantum_left = quantum;
    std::vector<bool> done(sources.size(), false);
    std::size_t live_sources = sources.size();
    activeAsid_ = static_cast<Asid>(active + 1);
    // Records are pulled in fixed-size chunks so the per-record
    // virtual dispatch (and, for memory-backed sources, all generator
    // branching) stays out of the instruction loop.  Chunks never
    // cross a context-switch boundary, so the interleaving schedule
    // is identical to the old one-record pull.
    TraceRecord batch[kReplayBatch];
    while (live_sources > 0) {
        // One relaxed load per 256-record batch: cheap enough to be
        // invisible, frequent enough that a fired --job-timeout
        // abandons the run within microseconds.
        checkCancelled();
        // Round-robin context switches every `quantum` instructions.
        if (sources.size() > 1 && quantum_left == 0) {
            std::size_t next = active;
            do {
                next = (next + 1) % sources.size();
            } while (done[next]);
            if (next != active && flush_on_switch) {
                // Non-ASID hardware invalidates translations on a
                // context switch (the switch's other costs are not
                // modeled).
                tlbs_->l1i().flushAll(retired);
                tlbs_->l1d().flushAll(retired);
                tlbs_->l2().flushAll(retired);
            }
            active = next;
            activeAsid_ = static_cast<Asid>(active + 1);
            quantum_left = quantum;
        }
        std::size_t want = kReplayBatch;
        if (sources.size() > 1)
            want = static_cast<std::size_t>(
                std::min<InstCount>(want, quantum_left));
        const std::size_t got = sources[active]->nextBatch(batch, want);
        if (got == 0) {
            done[active] = true;
            --live_sources;
            quantum_left = 0;
            continue;
        }
        if (sources.size() > 1)
            quantum_left -= got;
        for (std::size_t i = 0; i < got; ++i) {
            if (!snapped && retired >= warmup) {
                snap.cycles = cycles;
                snap.l1iAcc = tlbs_->l1i().accesses();
                snap.l1iMiss = tlbs_->l1i().misses();
                snap.l1dAcc = tlbs_->l1d().accesses();
                snap.l1dMiss = tlbs_->l1d().misses();
                snap.l2Acc = tlbs_->l2().accesses();
                snap.l2Hit = tlbs_->l2().hits();
                snap.l2Miss = tlbs_->l2().misses();
                snap.branches = branch_.branches();
                snap.mispredicts = branch_.mispredicts();
                snap.tReads = tlbs_->l2().policy().tableReads();
                snap.tWrites = tlbs_->l2().policy().tableWrites();
                snap.walkCycles = tlbs_->walker().totalCycles();
                snapped = true;
            }
            cycles += step(batch[i], retired);
            ++retired;
        }
    }
    if (!snapped) {
        // Degenerate short trace: everything is warmup; measure all.
        snap = Snapshot{};
    }

    tlbs_->finalizeEfficiency(retired);

    stats.instructions = retired - (snapped ? warmup : 0);
    if (retired < warmup)
        stats.instructions = retired;
    stats.cycles = cycles - snap.cycles;
    stats.l1iTlbAccesses = tlbs_->l1i().accesses() - snap.l1iAcc;
    stats.l1iTlbMisses = tlbs_->l1i().misses() - snap.l1iMiss;
    stats.l1dTlbAccesses = tlbs_->l1d().accesses() - snap.l1dAcc;
    stats.l1dTlbMisses = tlbs_->l1d().misses() - snap.l1dMiss;
    stats.l2TlbAccesses = tlbs_->l2().accesses() - snap.l2Acc;
    stats.l2TlbHits = tlbs_->l2().hits() - snap.l2Hit;
    stats.l2TlbMisses = tlbs_->l2().misses() - snap.l2Miss;
    stats.branches = branch_.branches() - snap.branches;
    stats.branchMispredicts = branch_.mispredicts() - snap.mispredicts;
    stats.tableReads = tlbs_->l2().policy().tableReads() - snap.tReads;
    stats.tableWrites = tlbs_->l2().policy().tableWrites() - snap.tWrites;
    stats.walkCycles = tlbs_->walker().totalCycles() - snap.walkCycles;
    stats.l2Efficiency = tlbs_->l2().efficiency().efficiency();
    return stats;
}

} // namespace chirp
