#include "sim/opt_bound.hh"

#include <limits>
#include <unordered_map>
#include <vector>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

namespace
{

/** Minimal LRU TLB used only to filter the L1 stream. */
class FilterTlb
{
  public:
    FilterTlb(std::uint32_t entries, std::uint32_t assoc)
        : sets_(entries / assoc), assoc_(assoc), slots_(entries)
    {
        if (!isPowerOfTwo(sets_))
            chirp_fatal("filter TLB set count must be a power of two");
    }

    bool
    access(Addr vpn)
    {
        ++tick_;
        const std::uint32_t set = vpn & (sets_ - 1);
        const Addr tag = vpn >> floorLog2(sets_);
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        std::size_t victim = base;
        std::uint64_t oldest = ~std::uint64_t{0};
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            Slot &slot = slots_[base + w];
            if (slot.valid && slot.tag == tag) {
                slot.lastUse = tick_;
                return true;
            }
            if (!slot.valid) {
                victim = base + w;
                oldest = 0;
            } else if (slot.lastUse < oldest) {
                victim = base + w;
                oldest = slot.lastUse;
            }
        }
        slots_[victim] = {true, tag, tick_};
        return false;
    }

  private:
    struct Slot
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::vector<Slot> slots_;
    std::uint64_t tick_ = 0;
};

} // namespace

OptBoundResult
computeOptBound(TraceSource &source, const OptBoundConfig &config)
{
    source.reset();
    FilterTlb l1i(config.l1Entries, config.l1Assoc);
    FilterTlb l1d(config.l1Entries, config.l1Assoc);

    // Pass 1 (single trace pass): extract the L2 access stream with
    // instruction indices attached.
    const std::uint32_t l2_sets = config.l2Entries / config.l2Assoc;
    std::vector<std::vector<Addr>> stream(l2_sets);   // vpns per set
    std::vector<std::vector<InstCount>> when(l2_sets); // inst index
    InstCount retired = 0;
    TraceRecord rec;
    while (source.next(rec)) {
        const Addr ipage = pageNumber(rec.pc);
        if (!l1i.access(ipage)) {
            const std::uint32_t set = ipage & (l2_sets - 1);
            stream[set].push_back(ipage);
            when[set].push_back(retired);
        }
        if (isMemory(rec.cls)) {
            const Addr dpage = pageNumber(rec.effAddr);
            if (!l1d.access(dpage)) {
                const std::uint32_t set = dpage & (l2_sets - 1);
                stream[set].push_back(dpage);
                when[set].push_back(retired);
            }
        }
        ++retired;
    }

    const InstCount warmup = static_cast<InstCount>(
        static_cast<double>(retired) * config.warmupFraction);

    OptBoundResult result;
    result.instructions = retired - warmup;

    // Pass 2: per-set Bélády.  Next-use indices are precomputed by a
    // backward scan; the victim is the resident page whose next use
    // lies furthest in the future.
    constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
    for (std::uint32_t set = 0; set < l2_sets; ++set) {
        const auto &vpns = stream[set];
        const std::size_t n = vpns.size();
        std::vector<std::size_t> next_use(n, kNever);
        {
            std::unordered_map<Addr, std::size_t> last;
            last.reserve(n);
            for (std::size_t i = n; i-- > 0;) {
                const auto it = last.find(vpns[i]);
                next_use[i] = it == last.end() ? kNever : it->second;
                last[vpns[i]] = i;
            }
        }

        std::vector<Addr> resident_vpn(config.l2Assoc, 0);
        std::vector<std::size_t> resident_next(config.l2Assoc, kNever);
        std::vector<bool> resident_valid(config.l2Assoc, false);
        for (std::size_t i = 0; i < n; ++i) {
            const bool measured = when[set][i] >= warmup;
            if (measured)
                ++result.accesses;
            bool hit = false;
            for (std::uint32_t w = 0; w < config.l2Assoc; ++w) {
                if (resident_valid[w] && resident_vpn[w] == vpns[i]) {
                    resident_next[w] = next_use[i];
                    hit = true;
                    break;
                }
            }
            if (hit)
                continue;
            if (measured)
                ++result.misses;
            // Fill: invalid way first, else furthest next use.
            std::uint32_t victim = 0;
            std::size_t furthest = 0;
            bool found_invalid = false;
            for (std::uint32_t w = 0; w < config.l2Assoc; ++w) {
                if (!resident_valid[w]) {
                    victim = w;
                    found_invalid = true;
                    break;
                }
                if (resident_next[w] >= furthest) {
                    furthest = resident_next[w];
                    victim = w;
                }
            }
            (void)found_invalid;
            resident_valid[victim] = true;
            resident_vpn[victim] = vpns[i];
            resident_next[victim] = next_use[i];
        }
    }
    return result;
}

} // namespace chirp
