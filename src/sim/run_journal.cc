#include "sim/run_journal.hh"

#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <vector>

#include <unistd.h>

#include "trace/trace_store.hh"
#include "util/atomic_file.hh"
#include "util/hashing.hh"
#include "util/logging.hh"
#include "util/quarantine.hh"

namespace chirp
{

namespace
{

constexpr char kMagic[] = "CHIRPJRNL";
constexpr unsigned kVersion = 2;

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Header fields are space-separated; names must not contain spaces. */
std::string
sanitizeToken(std::string text)
{
    if (text.empty())
        return "unnamed";
    for (char &c : text) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            c = '_';
    }
    return text;
}

/**
 * Move a journal that cannot be resumed aside to "<path>.stale"
 * (mirroring the trace cache's ".corrupt" quarantine) so the stale
 * evidence survives for inspection instead of being overwritten.
 */
void
quarantineStale(const std::string &path)
{
    namespace fs = std::filesystem;
    const std::string stale = path + ".stale";
    std::error_code ec;
    fs::remove(stale, ec);
    ec.clear();
    fs::rename(path, stale, ec);
    if (ec) {
        fs::remove(path, ec);
        chirp_warn("journal '", path,
                   "': could not quarantine; removed instead");
        return;
    }
    chirp_warn("journal '", path, "': quarantined stale file to '",
               stale, "'");
    noteQuarantined(stale, "stale journal (identity diverged)");
}

} // namespace

std::uint64_t
JournalIdentity::fingerprint() const
{
    std::uint64_t fp = mix64(0x4a524e4cull /* "JRNL" */);
    fp = hashCombine(fp, fnv1a(suite));
    fp = hashCombine(fp, suiteHash);
    fp = hashCombine(fp, configHash);
    return hashCombine(fp, fnv1a(schema));
}

std::string
encodeSimStats(const SimStats &stats)
{
    std::uint64_t eff_bits = 0;
    static_assert(sizeof(eff_bits) == sizeof(stats.l2Efficiency));
    std::memcpy(&eff_bits, &stats.l2Efficiency, sizeof(eff_bits));
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
        " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
        " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %016" PRIx64
        " %" PRIu64 " %" PRIu64,
        static_cast<std::uint64_t>(stats.instructions),
        static_cast<std::uint64_t>(stats.warmupInstructions),
        static_cast<std::uint64_t>(stats.cycles), stats.l1iTlbAccesses,
        stats.l1iTlbMisses, stats.l1dTlbAccesses, stats.l1dTlbMisses,
        stats.l2TlbAccesses, stats.l2TlbHits, stats.l2TlbMisses,
        stats.branches, stats.branchMispredicts, stats.tableReads,
        stats.tableWrites, eff_bits,
        static_cast<std::uint64_t>(stats.walkCycles),
        static_cast<std::uint64_t>(stats.walkLatency));
    return buf;
}

bool
decodeSimStats(const std::string &text, SimStats &stats)
{
    std::uint64_t f[14];
    std::uint64_t eff_bits = 0;
    std::uint64_t walk_cycles = 0;
    std::uint64_t walk_latency = 0;
    const int got = std::sscanf(
        text.c_str(),
        "%" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
        " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
        " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNx64
        " %" SCNu64 " %" SCNu64,
        &f[0], &f[1], &f[2], &f[3], &f[4], &f[5], &f[6], &f[7], &f[8],
        &f[9], &f[10], &f[11], &f[12], &f[13], &eff_bits, &walk_cycles,
        &walk_latency);
    if (got != 17)
        return false;
    stats.instructions = f[0];
    stats.warmupInstructions = f[1];
    stats.cycles = f[2];
    stats.l1iTlbAccesses = f[3];
    stats.l1iTlbMisses = f[4];
    stats.l1dTlbAccesses = f[5];
    stats.l1dTlbMisses = f[6];
    stats.l2TlbAccesses = f[7];
    stats.l2TlbHits = f[8];
    stats.l2TlbMisses = f[9];
    stats.branches = f[10];
    stats.branchMispredicts = f[11];
    stats.tableReads = f[12];
    stats.tableWrites = f[13];
    std::memcpy(&stats.l2Efficiency, &eff_bits, sizeof(eff_bits));
    stats.walkCycles = walk_cycles;
    stats.walkLatency = walk_latency;
    return true;
}

RunJournal::RunJournal(std::string path, JournalIdentity identity,
                       bool resume)
    : path_(std::move(path)), identity_(std::move(identity))
{
    identity_.suite = sanitizeToken(identity_.suite);
    identity_.schema = sanitizeToken(identity_.schema);
    const std::uint64_t fingerprint = identity_.fingerprint();

    const auto hex16 = [](std::uint64_t value) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
        return std::string(buf);
    };

    if (resume) {
        if (std::FILE *in = std::fopen(path_.c_str(), "rb")) {
            char line[640];
            bool header_ok = false;
            std::string reject = "empty file";
            if (std::fgets(line, sizeof(line), in)) {
                char magic[16] = "";
                unsigned version = 0;
                std::uint64_t fp = 0;
                char suite[256] = "";
                std::uint64_t suite_hash = 0;
                std::uint64_t config_hash = 0;
                char schema[64] = "";
                const int got = std::sscanf(
                    line, "%15s %u %" SCNx64 " %255s %" SCNx64
                          " %" SCNx64 " %63s",
                    magic, &version, &fp, suite, &suite_hash,
                    &config_hash, schema);
                if (got < 3 || std::strcmp(magic, kMagic) != 0) {
                    reject = "unrecognized header";
                } else if (version != kVersion) {
                    reject = detail::concat(
                        "format version diverged (file v", version,
                        " vs this build's v", kVersion, ")");
                } else if (got != 7) {
                    reject = "truncated identity header";
                } else if (fp == fingerprint) {
                    header_ok = true;
                } else {
                    // Name exactly which identity fields diverged so
                    // the user knows *why* the resume was refused.
                    std::vector<std::string> diffs;
                    if (identity_.suite != suite) {
                        diffs.push_back(detail::concat(
                            "suite name ('", suite, "' vs '",
                            identity_.suite, "')"));
                    }
                    if (suite_hash != identity_.suiteHash) {
                        diffs.push_back(detail::concat(
                            "suite hash (", hex16(suite_hash), " vs ",
                            hex16(identity_.suiteHash), ")"));
                    }
                    if (config_hash != identity_.configHash) {
                        diffs.push_back(detail::concat(
                            "config hash (", hex16(config_hash),
                            " vs ", hex16(identity_.configHash), ")"));
                    }
                    if (identity_.schema != schema) {
                        diffs.push_back(detail::concat(
                            "row schema ('", schema, "' vs '",
                            identity_.schema, "')"));
                    }
                    if (diffs.empty())
                        diffs.push_back("combined fingerprint");
                    reject = diffs[0];
                    for (std::size_t i = 1; i < diffs.size(); ++i)
                        reject += ", " + diffs[i];
                    reject += " diverged";
                }
            }
            if (header_ok) {
                while (std::fgets(line, sizeof(line), in)) {
                    std::uint64_t key = 0;
                    int off = 0;
                    if (std::sscanf(line, "J %" SCNx64 " %n", &key,
                                    &off) != 1 ||
                        off == 0) {
                        break; // torn trailing line: stop here
                    }
                    SimStats stats;
                    if (!decodeSimStats(line + off, stats))
                        break;
                    entries_[key] = stats;
                }
                loaded_ = entries_.size();
            }
            std::fclose(in);
            if (!header_ok) {
                chirp_warn("journal '", path_,
                           "' cannot be resumed against this run: ",
                           reject);
                quarantineStale(path_);
            }
        }
    }
    if (loaded_ > 0) {
        file_ = std::fopen(path_.c_str(), "ab");
    } else {
        file_ = std::fopen(path_.c_str(), "wb");
        if (file_) {
            std::fprintf(file_, "%s %u %s %s %s %s %s\n", kMagic,
                         kVersion, hex16(fingerprint).c_str(),
                         identity_.suite.c_str(),
                         hex16(identity_.suiteHash).c_str(),
                         hex16(identity_.configHash).c_str(),
                         identity_.schema.c_str());
            std::fflush(file_);
            ::fsync(::fileno(file_));
            // A fresh journal is a new directory entry; flush that
            // too so a power cut cannot lose the whole file.
            fsyncParentDir(path_);
        }
    }
    if (!file_)
        chirp_warn("cannot open journal '", path_,
                   "'; this run will not be resumable");
}

RunJournal::RunJournal(std::string path, std::uint64_t fingerprint,
                       bool resume)
    : RunJournal(std::move(path),
                 JournalIdentity{"unnamed", fingerprint, 0,
                                 kSimStatsSchema},
                 resume)
{
}

RunJournal::~RunJournal()
{
    if (file_)
        std::fclose(file_);
}

std::uint64_t
RunJournal::jobKey(std::uint64_t suite_seq,
                   const WorkloadConfig &workload,
                   std::size_t policy_idx)
{
    std::uint64_t key = mix64(suite_seq + 0x9e3779b97f4a7c15ull);
    key = hashCombine(key, workloadTraceKey(workload));
    key = hashCombine(key, fnv1a(workload.name));
    return hashCombine(key, policy_idx);
}

bool
RunJournal::lookup(std::uint64_t key, SimStats &stats) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    stats = it->second;
    return true;
}

void
RunJournal::record(std::uint64_t key, const SimStats &stats)
{
    const std::string fields = encodeSimStats(stats);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key] = stats;
    if (!file_)
        return;
    // One fprintf per entry so a crash tears at most the final line,
    // and an fsync so "journaled" means "on disk".
    std::fprintf(file_, "J %016" PRIx64 " %s\n", key, fields.c_str());
    std::fflush(file_);
    ::fsync(::fileno(file_));
}

} // namespace chirp
