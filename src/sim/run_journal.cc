#include "sim/run_journal.hh"

#include <cinttypes>
#include <cstring>

#include <unistd.h>

#include "trace/trace_store.hh"
#include "util/hashing.hh"
#include "util/logging.hh"

namespace chirp
{

namespace
{

constexpr char kMagic[] = "CHIRPJRNL";
constexpr unsigned kVersion = 1;

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

std::string
encodeSimStats(const SimStats &stats)
{
    std::uint64_t eff_bits = 0;
    static_assert(sizeof(eff_bits) == sizeof(stats.l2Efficiency));
    std::memcpy(&eff_bits, &stats.l2Efficiency, sizeof(eff_bits));
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
        " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
        " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %016" PRIx64
        " %" PRIu64 " %" PRIu64,
        static_cast<std::uint64_t>(stats.instructions),
        static_cast<std::uint64_t>(stats.warmupInstructions),
        static_cast<std::uint64_t>(stats.cycles), stats.l1iTlbAccesses,
        stats.l1iTlbMisses, stats.l1dTlbAccesses, stats.l1dTlbMisses,
        stats.l2TlbAccesses, stats.l2TlbHits, stats.l2TlbMisses,
        stats.branches, stats.branchMispredicts, stats.tableReads,
        stats.tableWrites, eff_bits,
        static_cast<std::uint64_t>(stats.walkCycles),
        static_cast<std::uint64_t>(stats.walkLatency));
    return buf;
}

bool
decodeSimStats(const std::string &text, SimStats &stats)
{
    std::uint64_t f[14];
    std::uint64_t eff_bits = 0;
    std::uint64_t walk_cycles = 0;
    std::uint64_t walk_latency = 0;
    const int got = std::sscanf(
        text.c_str(),
        "%" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
        " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
        " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNx64
        " %" SCNu64 " %" SCNu64,
        &f[0], &f[1], &f[2], &f[3], &f[4], &f[5], &f[6], &f[7], &f[8],
        &f[9], &f[10], &f[11], &f[12], &f[13], &eff_bits, &walk_cycles,
        &walk_latency);
    if (got != 17)
        return false;
    stats.instructions = f[0];
    stats.warmupInstructions = f[1];
    stats.cycles = f[2];
    stats.l1iTlbAccesses = f[3];
    stats.l1iTlbMisses = f[4];
    stats.l1dTlbAccesses = f[5];
    stats.l1dTlbMisses = f[6];
    stats.l2TlbAccesses = f[7];
    stats.l2TlbHits = f[8];
    stats.l2TlbMisses = f[9];
    stats.branches = f[10];
    stats.branchMispredicts = f[11];
    stats.tableReads = f[12];
    stats.tableWrites = f[13];
    std::memcpy(&stats.l2Efficiency, &eff_bits, sizeof(eff_bits));
    stats.walkCycles = walk_cycles;
    stats.walkLatency = walk_latency;
    return true;
}

RunJournal::RunJournal(std::string path, std::uint64_t fingerprint,
                       bool resume)
    : path_(std::move(path))
{
    if (resume) {
        if (std::FILE *in = std::fopen(path_.c_str(), "rb")) {
            char line[640];
            bool header_ok = false;
            if (std::fgets(line, sizeof(line), in)) {
                char magic[16];
                unsigned version = 0;
                std::uint64_t fp = 0;
                if (std::sscanf(line, "%15s %u %" SCNx64, magic,
                                &version, &fp) == 3 &&
                    std::strcmp(magic, kMagic) == 0 &&
                    version == kVersion && fp == fingerprint) {
                    header_ok = true;
                }
            }
            if (header_ok) {
                while (std::fgets(line, sizeof(line), in)) {
                    std::uint64_t key = 0;
                    int off = 0;
                    if (std::sscanf(line, "J %" SCNx64 " %n", &key,
                                    &off) != 1 ||
                        off == 0) {
                        break; // torn trailing line: stop here
                    }
                    SimStats stats;
                    if (!decodeSimStats(line + off, stats))
                        break;
                    entries_[key] = stats;
                }
                loaded_ = entries_.size();
            } else {
                chirp_warn("journal '", path_,
                           "' does not match this run "
                           "(different suite/config); restarting it");
            }
            std::fclose(in);
        }
    }
    if (loaded_ > 0) {
        file_ = std::fopen(path_.c_str(), "ab");
    } else {
        file_ = std::fopen(path_.c_str(), "wb");
        if (file_) {
            std::fprintf(file_, "%s %u %016" PRIx64 "\n", kMagic,
                         kVersion, fingerprint);
            std::fflush(file_);
            ::fsync(::fileno(file_));
        }
    }
    if (!file_)
        chirp_warn("cannot open journal '", path_,
                   "'; this run will not be resumable");
}

RunJournal::~RunJournal()
{
    if (file_)
        std::fclose(file_);
}

std::uint64_t
RunJournal::jobKey(std::uint64_t suite_seq,
                   const WorkloadConfig &workload,
                   std::size_t policy_idx)
{
    std::uint64_t key = mix64(suite_seq + 0x9e3779b97f4a7c15ull);
    key = hashCombine(key, workloadTraceKey(workload));
    key = hashCombine(key, fnv1a(workload.name));
    return hashCombine(key, policy_idx);
}

bool
RunJournal::lookup(std::uint64_t key, SimStats &stats) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    stats = it->second;
    return true;
}

void
RunJournal::record(std::uint64_t key, const SimStats &stats)
{
    const std::string fields = encodeSimStats(stats);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key] = stats;
    if (!file_)
        return;
    // One fprintf per entry so a crash tears at most the final line,
    // and an fsync so "journaled" means "on disk".
    std::fprintf(file_, "J %016" PRIx64 " %s\n", key, fields.c_str());
    std::fflush(file_);
    ::fsync(::fileno(file_));
}

} // namespace chirp
