/**
 * @file
 * Bélády (OPT) miss bound for the L2 TLB.
 *
 * The stream of accesses reaching the L2 TLB is fixed by the trace
 * and the (LRU) L1 TLBs — it does not depend on the L2 replacement
 * policy.  That makes the clairvoyant minimum computable offline:
 * replay the trace once to extract the L2 access stream, then run
 * Bélády's algorithm per set.  The result bounds how much *any*
 * replacement policy (CHiRP included) can reduce L2 TLB misses.
 */

#ifndef CHIRP_SIM_OPT_BOUND_HH
#define CHIRP_SIM_OPT_BOUND_HH

#include <cstdint>

#include "trace/trace_source.hh"

namespace chirp
{

/** OPT result over the measured phase. */
struct OptBoundResult
{
    InstCount instructions = 0;  //!< measured-phase instructions
    std::uint64_t accesses = 0;  //!< L2 accesses in the measured phase
    std::uint64_t misses = 0;    //!< OPT misses in the measured phase

    /** Clairvoyant L2 TLB MPKI. */
    double
    mpki() const
    {
        if (instructions == 0)
            return 0.0;
        return static_cast<double>(misses) * 1000.0 /
               static_cast<double>(instructions);
    }
};

/** Geometry for the bound (Table II defaults). */
struct OptBoundConfig
{
    std::uint32_t l1Entries = 64;
    std::uint32_t l1Assoc = 8;
    std::uint32_t l2Entries = 1024;
    std::uint32_t l2Assoc = 8;
    /** Fraction of the trace treated as warmup (not counted). */
    double warmupFraction = 0.5;
};

/** Compute the OPT bound for @p source (resets it first). */
OptBoundResult computeOptBound(TraceSource &source,
                               const OptBoundConfig &config = {});

} // namespace chirp

#endif // CHIRP_SIM_OPT_BOUND_HH
