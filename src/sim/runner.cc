#include "sim/runner.hh"

#include <cstdio>

#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace chirp
{

Runner::Runner(const SimConfig &config)
    : config_(config)
{
}

SimStats
Runner::runOne(const WorkloadConfig &workload,
               const PolicyFactory &factory) const
{
    const auto program = buildWorkload(workload);
    const std::uint32_t sets =
        config_.tlbs.l2.entries / config_.tlbs.l2.assoc;
    Simulator sim(config_, factory(sets, config_.tlbs.l2.assoc));
    return sim.run(*program);
}

std::vector<WorkloadResult>
Runner::runSuite(const std::vector<WorkloadConfig> &suite,
                 const PolicyFactory &factory,
                 const std::string &label) const
{
    std::vector<WorkloadResult> results;
    results.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        if (!label.empty()) {
            std::fprintf(stderr, "\r  [%s] %zu/%zu workloads", label.c_str(),
                         i + 1, suite.size());
            std::fflush(stderr);
        }
        results.push_back({suite[i], runOne(suite[i], factory)});
    }
    if (!label.empty())
        std::fprintf(stderr, "\n");
    return results;
}

PolicyFactory
Runner::factoryFor(PolicyKind kind)
{
    return [kind](std::uint32_t sets, std::uint32_t assoc) {
        return makePolicy(kind, sets, assoc);
    };
}

double
averageMpki(const std::vector<WorkloadResult> &results)
{
    std::vector<double> mpkis;
    mpkis.reserve(results.size());
    for (const auto &r : results)
        mpkis.push_back(r.stats.mpki());
    return mean(mpkis);
}

double
mpkiReductionPct(const std::vector<WorkloadResult> &baseline,
                 const std::vector<WorkloadResult> &results)
{
    return pctReduction(averageMpki(baseline), averageMpki(results));
}

double
speedupPct(const std::vector<WorkloadResult> &baseline,
           const std::vector<WorkloadResult> &results, Cycles penalty)
{
    if (baseline.size() != results.size())
        chirp_fatal("speedup: result sets differ in size");
    std::vector<double> ipc;
    std::vector<double> base;
    ipc.reserve(results.size());
    base.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ipc.push_back(results[i].stats.ipcAtPenalty(penalty));
        base.push_back(baseline[i].stats.ipcAtPenalty(penalty));
    }
    return geomeanSpeedupPct(ipc, base);
}

double
efficiencyGainPct(const std::vector<WorkloadResult> &baseline,
                  const std::vector<WorkloadResult> &results)
{
    if (baseline.size() != results.size())
        chirp_fatal("efficiency: result sets differ in size");
    std::vector<double> gains;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const double base = baseline[i].stats.l2Efficiency;
        if (base <= 0.0)
            continue;
        gains.push_back(
            (results[i].stats.l2Efficiency / base - 1.0) * 100.0);
    }
    return mean(gains);
}

double
meanTableAccessRate(const std::vector<WorkloadResult> &results)
{
    std::vector<double> rates;
    rates.reserve(results.size());
    for (const auto &r : results)
        rates.push_back(r.stats.tableAccessRate());
    return mean(rates);
}

} // namespace chirp
