#include "sim/runner.hh"

#include <algorithm>
#include <future>

#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/progress.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace chirp
{

Runner::Runner(const SimConfig &config, unsigned jobs)
    : config_(config), jobs_(jobs)
{
}

SimStats
Runner::runOne(const WorkloadConfig &workload,
               const PolicyFactory &factory) const
{
    const auto program = buildWorkload(workload);
    const std::uint32_t sets =
        config_.tlbs.l2.entries / config_.tlbs.l2.assoc;
    Simulator sim(config_, factory(sets, config_.tlbs.l2.assoc));
    return sim.run(*program);
}

std::vector<WorkloadResult>
Runner::runSuite(const std::vector<WorkloadConfig> &suite,
                 const PolicyFactory &factory,
                 const std::string &label) const
{
    return runSuiteParallel(suite, factory, jobs_, label);
}

std::vector<WorkloadResult>
Runner::runSuiteParallel(const std::vector<WorkloadConfig> &suite,
                         const PolicyFactory &factory, unsigned jobs,
                         const std::string &label) const
{
    if (jobs == 0)
        jobs = ThreadPool::defaultConcurrency();

    ProgressReporter progress(label, suite.size());

    if (jobs <= 1 || suite.size() <= 1) {
        // Legacy serial path: one job after another on this thread.
        std::vector<WorkloadResult> results;
        results.reserve(suite.size());
        for (const WorkloadConfig &workload : suite) {
            results.push_back({workload, runOne(workload, factory)});
            progress.tick();
        }
        return results;
    }

    // Shard one job per (workload) across the pool.  Every job
    // builds its own Program and policy instance from the workload
    // seed, writes only its own slot, and ticks the shared reporter;
    // slot-indexed writes mean the merged vector is in suite order
    // and bit-identical to the serial path no matter which worker
    // finishes first.
    std::vector<WorkloadResult> results(suite.size());
    ThreadPool pool(std::min<std::size_t>(jobs, suite.size()));
    std::vector<std::future<void>> pending;
    pending.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        pending.push_back(pool.submit([&, i] {
            results[i] = {suite[i], runOne(suite[i], factory)};
            progress.tick();
        }));
    }
    // get() rethrows the first job failure; the pool destructor then
    // abandons unstarted jobs so teardown stays prompt.
    for (std::future<void> &job : pending)
        job.get();
    return results;
}

PolicyFactory
Runner::factoryFor(PolicyKind kind)
{
    return [kind](std::uint32_t sets, std::uint32_t assoc) {
        return makePolicy(kind, sets, assoc);
    };
}

SimStats
aggregateStats(const std::vector<WorkloadResult> &results)
{
    SimStats total;
    for (const WorkloadResult &r : results)
        total.merge(r.stats);
    return total;
}

double
averageMpki(const std::vector<WorkloadResult> &results)
{
    std::vector<double> mpkis;
    mpkis.reserve(results.size());
    for (const auto &r : results)
        mpkis.push_back(r.stats.mpki());
    return mean(mpkis);
}

double
mpkiReductionPct(const std::vector<WorkloadResult> &baseline,
                 const std::vector<WorkloadResult> &results)
{
    return pctReduction(averageMpki(baseline), averageMpki(results));
}

double
speedupPct(const std::vector<WorkloadResult> &baseline,
           const std::vector<WorkloadResult> &results, Cycles penalty)
{
    if (baseline.size() != results.size())
        chirp_fatal("speedup: result sets differ in size");
    std::vector<double> ipc;
    std::vector<double> base;
    ipc.reserve(results.size());
    base.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ipc.push_back(results[i].stats.ipcAtPenalty(penalty));
        base.push_back(baseline[i].stats.ipcAtPenalty(penalty));
    }
    return geomeanSpeedupPct(ipc, base);
}

double
efficiencyGainPct(const std::vector<WorkloadResult> &baseline,
                  const std::vector<WorkloadResult> &results)
{
    if (baseline.size() != results.size())
        chirp_fatal("efficiency: result sets differ in size");
    std::vector<double> gains;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const double base = baseline[i].stats.l2Efficiency;
        if (base <= 0.0)
            continue;
        gains.push_back(
            (results[i].stats.l2Efficiency / base - 1.0) * 100.0);
    }
    return mean(gains);
}

double
meanTableAccessRate(const std::vector<WorkloadResult> &results)
{
    std::vector<double> rates;
    rates.reserve(results.size());
    for (const auto &r : results)
        rates.push_back(r.stats.tableAccessRate());
    return mean(rates);
}

} // namespace chirp
