#include "sim/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <thread>

#include "core/chirp.hh"
#include "core/ghrp.hh"
#include "dist/fabric.hh"
#include "sim/run_journal.hh"
#include "sim/simulator.hh"
#include "trace/ingest/ingest.hh"
#include "util/fault_injection.hh"
#include "util/hashing.hh"
#include "util/logging.hh"
#include "util/progress.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace chirp
{

namespace
{

/**
 * One CHiRP signature-stream group: every CHiRP variant whose
 * signatures are configured identically (same history shape and
 * signature width — the common case in parameter sweeps) shares one
 * precomputed stream, because table geometry, hash, thresholds and
 * training knobs never touch the histories.
 */
struct SigGroup
{
    HistoryConfig history;
    unsigned signatureBits = 0;
    std::vector<std::uint16_t> sigs;
};

/**
 * GHRP's analog: the global history register depends only on
 * historyShift — masks and signature width all apply downstream of
 * it — so variants sharing that field share one register stream.
 */
struct GhrpGroup
{
    unsigned historyShift = 0;
    std::vector<std::uint64_t> hists;
};

/**
 * Precompute every group's replay stream in a single walk of the
 * record stream: at each L2 event capture, per CHiRP group,
 * foldXor(history.signature(pc), signatureBits) — and per GHRP
 * group the current global history register — using the pre-update
 * state exactly as onAccessBegin does; then apply each group's
 * history update rules for the record (onInstRetired's path filter
 * and onBranchRetired's class split for CHiRP, the conditional-
 * branch outcome/address shift for GHRP).  Sharing the walk means
 * the 30M-record retire stream is touched once per workload however
 * many streamed policies ride on it.
 */
void
computeReplayStreams(std::vector<SigGroup> &groups,
                     std::vector<GhrpGroup> &ghrp_groups,
                     const ColumnarTrace &records,
                     const std::vector<L2Event> &events)
{
    if (groups.empty() && ghrp_groups.empty())
        return;
    std::vector<ControlFlowHistory> hist;
    hist.reserve(groups.size());
    for (SigGroup &group : groups) {
        group.sigs.reserve(events.size());
        hist.emplace_back(group.history);
    }
    std::vector<std::uint64_t> ghist(ghrp_groups.size(), 0);
    for (GhrpGroup &group : ghrp_groups)
        group.hists.reserve(events.size());
    // Only the pc and meta columns feed the histories; the effective
    // address and target columns are never touched here.
    const Addr *pcs = records.pc();
    std::size_t e = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        while (e < events.size() && events[e].now == i) {
            for (std::size_t g = 0; g < groups.size(); ++g) {
                groups[g].sigs.push_back(
                    static_cast<std::uint16_t>(foldXor(
                        hist[g].signature(events[e].pc),
                        groups[g].signatureBits)));
            }
            for (std::size_t g = 0; g < ghrp_groups.size(); ++g)
                ghrp_groups[g].hists.push_back(ghist[g]);
            ++e;
        }
        if (e == events.size())
            break; // trailing records can no longer matter
        const Addr pc = pcs[i];
        const InstClass cls = records.cls(i);
        for (std::size_t g = 0; g < groups.size(); ++g) {
            bool on_path = true;
            switch (groups[g].history.pathFilter) {
              case PathFilter::All:
                break;
              case PathFilter::Memory:
                on_path = isMemory(cls);
                break;
              case PathFilter::Branch:
                on_path = isBranch(cls);
                break;
            }
            if (on_path)
                hist[g].onAccess(pc);
            if (cls == InstClass::CondBranch)
                hist[g].onCondBranch(pc);
            else if (cls == InstClass::UncondIndirect)
                hist[g].onUncondIndirectBranch(pc);
        }
        if (!ghrp_groups.empty() && cls == InstClass::CondBranch) {
            for (std::size_t g = 0; g < ghrp_groups.size(); ++g) {
                const unsigned shift = ghrp_groups[g].historyShift;
                const std::uint64_t event =
                    (bits(pc, shift, 2) << 1) |
                    (records.taken(i) ? 1 : 0);
                ghist[g] = (ghist[g] << shift) | event;
            }
        }
    }
}

/**
 * Fingerprint one suite call for the distributed fabric's announce
 * handshake: coordinator and workers rebuild the same world from the
 * same binary and arguments, and this hash (call number, workload
 * set, policy count) is how a diverged worker gets caught before its
 * results can poison a byte-identical merge.
 */
std::uint64_t
suiteCallFingerprint(std::uint64_t seq,
                     const std::vector<WorkloadConfig> &suite,
                     std::size_t policies)
{
    std::uint64_t fp = hashCombine(mix64(seq), policies);
    for (const WorkloadConfig &workload : suite)
        fp = hashCombine(fp, RunJournal::jobKey(0, workload, 0));
    return fp;
}

/**
 * Is the policy-parallel batch replay enabled?  On by default; set
 * CHIRP_POLICY_PARALLEL=0 to force the legacy one-replay-per-policy
 * walk (the CI equality leg diffs the two).  Read per suite call so
 * tests can flip it between runs in one process.
 */
bool
policyParallelReplay()
{
    const char *value = std::getenv("CHIRP_POLICY_PARALLEL");
    return !(value != nullptr && value[0] == '0' && value[1] == '\0');
}

/**
 * Cancels jobs whose current attempt exceeds the --job-timeout
 * budget.  One slot per concurrently-guarded job; a scan thread wakes
 * a few times per timeout period, and an overrunning attempt is
 * flagged, warned about once, and has its cancel token raised — the
 * simulator polls the token at its cancellation points and aborts the
 * attempt with JobCancelled, which the guard records as timed-out
 * (never retried; under the distributed fabric the job's shard is
 * requeued instead).  Inert (no thread, no locking) when the timeout
 * is 0.
 */
class Watchdog
{
  public:
    Watchdog(std::uint64_t timeout_ms, std::size_t slots)
        : timeoutMs_(timeout_ms), slots_(slots)
    {
        if (timeoutMs_ == 0)
            return;
        tokens_.reserve(slots);
        for (std::size_t i = 0; i < slots; ++i)
            tokens_.push_back(
                std::make_unique<std::atomic<bool>>(false));
        scanner_ = std::thread([this] { scan(); });
    }

    ~Watchdog()
    {
        if (!scanner_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        scanner_.join();
    }

    /** Begin timing one attempt of the job in @p slot. */
    void
    start(std::size_t slot, const std::string &desc)
    {
        if (timeoutMs_ == 0)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        slots_[slot] = {Clock::now(), desc, true, false};
        tokens_[slot]->store(false, std::memory_order_relaxed);
    }

    /**
     * Cancel token for @p slot, for Simulator::setCancelToken; null
     * when the watchdog is inert.
     */
    const std::atomic<bool> *
    token(std::size_t slot) const
    {
        return timeoutMs_ == 0 ? nullptr : tokens_[slot].get();
    }

    /** Stop timing @p slot; true when the attempt was flagged. */
    bool
    finish(std::size_t slot)
    {
        if (timeoutMs_ == 0)
            return false;
        std::lock_guard<std::mutex> lock(mutex_);
        slots_[slot].running = false;
        return slots_[slot].flagged;
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct Slot
    {
        Clock::time_point start{};
        std::string desc;
        bool running = false;
        bool flagged = false;
    };

    void
    scan()
    {
        const auto period = std::chrono::milliseconds(
            std::max<std::uint64_t>(10, timeoutMs_ / 4));
        const auto budget = std::chrono::milliseconds(timeoutMs_);
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stopping_) {
            cv_.wait_for(lock, period);
            const auto now = Clock::now();
            for (std::size_t i = 0; i < slots_.size(); ++i) {
                Slot &slot = slots_[i];
                if (!slot.running || slot.flagged)
                    continue;
                if (now - slot.start >= budget) {
                    slot.flagged = true;
                    tokens_[i]->store(true,
                                      std::memory_order_relaxed);
                    chirp_warn("watchdog: job '", slot.desc,
                               "' exceeded --job-timeout (", timeoutMs_,
                               " ms); cancelling the attempt");
                }
            }
        }
    }

    const std::uint64_t timeoutMs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Slot> slots_;
    std::vector<std::unique_ptr<std::atomic<bool>>> tokens_;
    bool stopping_ = false;
    std::thread scanner_;
};

/** What runGuarded observed across every attempt of one job. */
struct GuardOutcome
{
    bool ok = false;
    bool hung = false;
    bool timedOut = false;
    unsigned attempts = 0;
    std::uint64_t wallNs = 0;
    std::string error;
};

/**
 * Run @p body under the suite isolation contract: catch everything,
 * retry TransientError up to @p retries extra attempts, time each
 * attempt under the watchdog.  @p body must be idempotent — it runs
 * once per attempt and must not observe partial state from a failed
 * previous attempt.
 */
template <typename Body>
GuardOutcome
runGuarded(unsigned retries, Watchdog &dog, std::size_t slot,
           const std::string &desc, Body &&body)
{
    GuardOutcome out;
    for (;;) {
        ++out.attempts;
        dog.start(slot, desc);
        const auto begin = std::chrono::steady_clock::now();
        bool transient = false;
        try {
            FaultInjector::instance().onJobStart();
            body();
            out.ok = true;
            out.error.clear();
        } catch (const JobCancelled &err) {
            // Enforced timeout: the watchdog cancelled the attempt.
            // Never retried — a deterministic job that blew the
            // budget once will blow it again.
            out.timedOut = true;
            out.error = err.what();
        } catch (const IngestError &err) {
            // Watchdog cancellation surfacing through the ingest
            // front-end is a timeout like JobCancelled; every other
            // ingest failure (hostile file, blown budget) is an
            // ordinary job failure the suite survives.
            if (err.kind() == DecodeErrorKind::Cancelled ||
                err.kind() == DecodeErrorKind::Timeout) {
                out.timedOut = true;
            }
            out.error = err.what();
        } catch (const TransientError &err) {
            transient = true;
            out.error = err.what();
        } catch (const std::exception &err) {
            out.error = err.what();
        } catch (...) {
            out.error = "unknown exception";
        }
        out.wallNs += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count());
        out.hung |= dog.finish(slot);
        if (out.ok || !transient || out.attempts > retries)
            return out;
    }
}

/**
 * Per-suite-run collector: forwards every outcome to the shared
 * SuiteHealth ledger and prints one failure summary when the run
 * finishes, so a long bench says what broke right where it broke.
 */
class RunLedger
{
  public:
    RunLedger(std::string label, std::shared_ptr<SuiteHealth> health,
              bool journaled)
        : label_(std::move(label)), health_(std::move(health)),
          journaled_(journaled)
    {
    }

    void
    add(JobResult job)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++total_;
        if (health_)
            health_->add(job);
        if (!job.ok)
            failures_.push_back(std::move(job));
    }

    void
    summarize() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (failures_.empty())
            return;
        chirp_warn("suite '", label_, "': ", failures_.size(), " of ",
                   total_, " jobs failed");
        for (const JobResult &job : failures_) {
            chirp_warn("  ", job.workload, " x ", job.policy, ": ",
                       job.error, " (", job.attempts, " attempt",
                       job.attempts == 1 ? "" : "s", ", ",
                       job.wallNs / 1000000, " ms)",
                       job.timedOut  ? " [timed out]"
                       : job.hung    ? " [hung]"
                                     : "");
        }
        if (journaled_)
            chirp_warn("  rerun with --resume to retry only the "
                       "failed jobs");
    }

  private:
    mutable std::mutex mutex_;
    std::string label_;
    std::shared_ptr<SuiteHealth> health_;
    bool journaled_;
    std::vector<JobResult> failures_;
    std::uint64_t total_ = 0;
};

} // namespace

void
SuiteHealth::add(const JobResult &job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++total_;
    if (job.ok)
        ++ok_;
    if (job.resumed)
        ++resumed_;
    if (job.hung)
        ++hung_;
    if (job.timedOut)
        ++timedOut_;
    if (job.attempts > 1)
        ++retried_;
    if (!job.ok)
        failures_.push_back(job);
}

std::uint64_t
SuiteHealth::totalJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

std::uint64_t
SuiteHealth::okJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ok_;
}

std::uint64_t
SuiteHealth::resumedJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resumed_;
}

std::uint64_t
SuiteHealth::hungJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hung_;
}

std::uint64_t
SuiteHealth::timedOutJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return timedOut_;
}

std::uint64_t
SuiteHealth::retriedJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return retried_;
}

std::vector<JobResult>
SuiteHealth::failures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failures_;
}

std::size_t
SuiteHealth::failureCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failures_.size();
}

Runner::Runner(const SimConfig &config, unsigned jobs)
    : config_(config), jobs_(jobs),
      store_(std::make_shared<TraceStore>()),
      health_(std::make_shared<SuiteHealth>())
{
}

void
Runner::setHealth(std::shared_ptr<SuiteHealth> health)
{
    health_ = health ? std::move(health)
                     : std::make_shared<SuiteHealth>();
}

SimStats
Runner::runOne(const WorkloadConfig &workload,
               const PolicyFactory &factory) const
{
    const std::uint32_t sets =
        config_.tlbs.l2.entries / config_.tlbs.l2.assoc;
    Simulator sim(config_, factory(sets, config_.tlbs.l2.assoc));
    if (!workload.tracePath.empty()) {
        // External workload: replay the ingested stream; the store
        // dedups concurrent ingests of the same file.
        const SharedTrace trace = store_->get(workload);
        MemoryTraceSource source(trace, workload.name);
        return sim.run(source);
    }
    const auto program = buildWorkload(workload);
    return sim.run(*program);
}

SimStats
Runner::runReplay(const WorkloadConfig &workload,
                  const SharedTrace &trace,
                  const PolicyFactory &factory) const
{
    const std::uint32_t sets =
        config_.tlbs.l2.entries / config_.tlbs.l2.assoc;
    MemoryTraceSource source(trace, workload.name);
    Simulator sim(config_, factory(sets, config_.tlbs.l2.assoc));
    return sim.run(source);
}

void
Runner::setTraceCacheDir(const std::string &dir)
{
    store_ = std::make_shared<TraceStore>(dir);
}

std::vector<std::vector<WorkloadResult>>
Runner::runSuiteMulti(const std::vector<WorkloadConfig> &suite,
                      const std::vector<PolicyFactory> &factories,
                      const std::string &label,
                      const SimObserver &observer,
                      const std::vector<std::string> &tags) const
{
    std::vector<std::vector<WorkloadResult>> results(factories.size());
    if (factories.empty() || suite.empty())
        return results;
    for (auto &per_policy : results)
        per_policy.resize(suite.size());

    const std::uint32_t sets =
        config_.tlbs.l2.entries / config_.tlbs.l2.assoc;
    const std::uint32_t assoc = config_.tlbs.l2.assoc;
    TraceStore &store = *store_;
    ProgressReporter progress(label, suite.size() * factories.size());

    unsigned jobs = jobs_;
    if (jobs == 0)
        jobs = ThreadPool::defaultConcurrency();

    // An observer disables the journal for this call: resumed jobs
    // skip simulation entirely, so observer-derived data (diagnostic
    // counters read off the live policy) would silently go missing.
    RunJournal *journal = observer ? nullptr : journal_.get();
    dist::SweepFabric *fabric = fabric_.get();
    if (fabric && fabric->isWorker())
        journal = nullptr; // worker scratch runs are never resumed
    // The suite sequence number keys the journal and names this call
    // on the wire.  It must advance identically across serial runs,
    // coordinators, and workers, so every suite call bumps exactly
    // one counter: the fabric's when one is attached, the shared
    // journal's otherwise (even for observer calls that bypass the
    // journal, so the numbering cannot depend on the mode).
    std::uint64_t seq = 0;
    if (fabric)
        seq = fabric->nextSuiteSeq();
    else if (journal_)
        seq = journal_->nextSuiteSeq();

    const bool distributable = !observer && !forceVirtualDispatch();
    if (fabric && fabric->isWorker() && !distributable) {
        // Only the coordinator's CSVs are real; workers answer
        // non-distributable calls with zero-shaped results.
        for (std::size_t p = 0; p < factories.size(); ++p)
            for (std::size_t w = 0; w < suite.size(); ++w)
                results[p][w].workload = suite[w];
        return results;
    }
    if (fabric && fabric->isCoordinator() && !distributable)
        fabric->skipSuite(seq);

    RunLedger ledger(label.empty() ? "policies" : label, health_,
                     journal != nullptr);
    Watchdog dog(resilience_.jobTimeoutMs,
                 suite.size() * factories.size());
    auto tag_of = [&](std::size_t p) {
        return p < tags.size() ? tags[p] : "p" + std::to_string(p);
    };
    // On a participating worker this streams every guarded outcome
    // (stats or error text) back to the coordinator; empty otherwise.
    std::function<void(std::size_t, std::size_t, const GuardOutcome &)>
        remote_report;
    auto add_outcome = [&](std::size_t w, std::size_t p,
                           const GuardOutcome &out) {
        if (remote_report)
            remote_report(w, p, out);
        JobResult job;
        job.workload = suite[w].name;
        job.policy = tag_of(p);
        job.ok = out.ok;
        job.hung = out.hung;
        job.timedOut = out.timedOut;
        job.attempts = out.attempts;
        job.wallNs = out.wallNs;
        job.error = out.error;
        ledger.add(std::move(job));
        progress.tick();
    };
    auto add_resumed = [&](std::size_t w, std::size_t p) {
        JobResult job;
        job.workload = suite[w].name;
        job.policy = tag_of(p);
        job.ok = true;
        job.resumed = true;
        ledger.add(std::move(job));
        progress.tick();
    };

    if (forceVirtualDispatch()) {
        // Legacy path (CHIRP_FORCE_VIRTUAL): full simulation of every
        // (workload, policy) pair.  The equality tests diff this
        // against the record/replay fast path below, so it must stay
        // the reference implementation.
        std::vector<std::vector<bool>> done(
            factories.size(), std::vector<bool>(suite.size(), false));
        std::vector<std::size_t> missing(suite.size(), 0);
        for (std::size_t w = 0; w < suite.size(); ++w) {
            for (std::size_t p = 0; p < factories.size(); ++p) {
                results[p][w].workload = suite[w];
                if (journal &&
                    journal->lookup(
                        RunJournal::jobKey(seq, suite[w], p),
                        results[p][w].stats)) {
                    done[p][w] = true;
                    add_resumed(w, p);
                } else {
                    ++missing[w];
                }
            }
        }
        auto run_job = [&](std::size_t w, std::size_t p) {
            const GuardOutcome out = runGuarded(
                resilience_.retries, dog,
                w * factories.size() + p,
                suite[w].name + " x " + tag_of(p), [&] {
                    // The same token the simulator polls also reaches
                    // any external-trace ingest under store.get.
                    ScopedIngestCancel ingest_cancel(
                        dog.token(w * factories.size() + p));
                    const SharedTrace trace = store.get(suite[w]);
                    MemoryTraceSource source(trace, suite[w].name);
                    Simulator sim(config_, factories[p](sets, assoc));
                    sim.setCancelToken(
                        dog.token(w * factories.size() + p));
                    results[p][w] = {suite[w], sim.run(source)};
                    if (observer)
                        observer(p, w, sim);
                });
            if (out.ok && journal) {
                journal->record(RunJournal::jobKey(seq, suite[w], p),
                                results[p][w].stats);
            }
            add_outcome(w, p, out);
        };
        const std::size_t total = suite.size() * factories.size();
        if (jobs <= 1 || total <= 1) {
            for (std::size_t w = 0; w < suite.size(); ++w) {
                for (std::size_t p = 0; p < factories.size(); ++p) {
                    if (!done[p][w])
                        run_job(w, p);
                }
                store.drop(suite[w]);
            }
        } else {
            ThreadPool pool(std::min<std::size_t>(jobs, total));
            // remaining[w] counts policies still to replay workload
            // w; the job that takes it to zero drops the store's
            // reference.  Jobs are submitted workload-major, so a
            // FIFO pool keeps only about ceil(jobs / P) + 1 traces
            // materialized at once.
            std::vector<std::atomic<std::size_t>> remaining(
                suite.size());
            for (std::size_t w = 0; w < suite.size(); ++w)
                remaining[w].store(missing[w]);
            std::vector<std::future<void>> pending;
            pending.reserve(total);
            for (std::size_t w = 0; w < suite.size(); ++w) {
                for (std::size_t p = 0; p < factories.size(); ++p) {
                    if (done[p][w])
                        continue;
                    pending.push_back(pool.submit([&, w, p] {
                        run_job(w, p);
                        if (remaining[w].fetch_sub(1) == 1)
                            store.drop(suite[w]);
                    }));
                }
            }
            // Jobs never throw (failures land in the ledger), so
            // get() here is pure synchronization.
            for (std::future<void> &job : pending)
                job.get();
        }
        ledger.summarize();
        return results;
    }

    // Fast path: one full simulation per workload (the recorder, a
    // throwaway LRU whose results are discarded) captures the L2
    // event stream, which is policy-independent because the plain-LRU
    // L1 TLBs never consult the L2.  Every requested policy then
    // replays just that stream — a small fraction of the records —
    // through Simulator::replayL2, which reconstructs bit-identical
    // full-run statistics from the recorder's baseline.
    //
    // The resume scan runs up front (not per-workload) so the set of
    // pending workloads is known before execution starts: that set is
    // what a coordinator shards across fabric workers, with remote
    // deliveries marked in the same done/missing arrays journal hits
    // are.  Plain byte flags, not vector<bool>: columns of `done` are
    // touched from different pool workers.
    std::vector<std::vector<char>> done(
        factories.size(), std::vector<char>(suite.size(), 0));
    std::vector<std::size_t> missing(suite.size(), factories.size());
    for (std::size_t w = 0; w < suite.size(); ++w) {
        for (std::size_t p = 0; p < factories.size(); ++p) {
            results[p][w].workload = suite[w];
            if (journal &&
                journal->lookup(RunJournal::jobKey(seq, suite[w], p),
                                results[p][w].stats)) {
                done[p][w] = 1;
                --missing[w];
                add_resumed(w, p);
            }
        }
    }
    std::vector<std::size_t> pending;
    for (std::size_t w = 0; w < suite.size(); ++w)
        if (missing[w] > 0)
            pending.push_back(w);

    auto run_workload = [&](std::size_t w) {
        if (missing[w] == 0)
            return; // fully resumed or remotely delivered

        SharedTrace trace;
        std::vector<L2Event> events;
        SimStats base;
        const GuardOutcome rec_out = runGuarded(
            resilience_.retries, dog, w * factories.size(),
            suite[w].name + " (recorder)", [&] {
                // A retried attempt must not see the previous one's
                // partial event stream.
                events.clear();
                ScopedIngestCancel ingest_cancel(
                    dog.token(w * factories.size()));
                trace = store.get(suite[w]);
                MemoryTraceSource source(trace, suite[w].name);
                Simulator recorder(
                    config_, makePolicy(PolicyKind::Lru, sets, assoc));
                recorder.setCancelToken(
                    dog.token(w * factories.size()));
                recorder.tlbs().setL2EventSink(&events);
                base = recorder.run(source);
            });
        if (!rec_out.ok) {
            // No event stream: every pending policy of this workload
            // fails with the recorder's error.
            for (std::size_t p = 0; p < factories.size(); ++p) {
                if (!done[p][w])
                    add_outcome(w, p, rec_out);
            }
            store.drop(suite[w]);
            return;
        }
        // Probe one throwaway instance per pending policy: CHiRP
        // variants whose signatures are configured identically (same
        // history shape and signature width — the common case in
        // parameter sweeps) share one precomputed signature stream,
        // so the retire stream is walked once per distinct
        // configuration instead of once per variant.  The instances
        // actually simulated are constructed fresh inside each
        // guarded job so a retried attempt starts from scratch.
        std::vector<SigGroup> groups;
        std::vector<GhrpGroup> ghrp_groups;
        std::vector<std::size_t> group_of(factories.size(), 0);
        std::vector<bool> is_chirp(factories.size(), false);
        std::vector<bool> is_ghrp(factories.size(), false);
        for (std::size_t p = 0; p < factories.size(); ++p) {
            if (done[p][w])
                continue;
            const auto probe = factories[p](sets, assoc);
            // On the legacy trace tier GHRP keeps walking the retire
            // stream: that path stays the byte-equality reference the
            // CI leg diffs the streamed replay against.
            if (const auto *ghrp =
                    traceFormat() == TraceFormat::Legacy
                        ? nullptr
                        : dynamic_cast<const GhrpPolicy *>(probe.get())) {
                is_ghrp[p] = true;
                const unsigned shift = ghrp->config().historyShift;
                std::size_t g = 0;
                while (g < ghrp_groups.size() &&
                       ghrp_groups[g].historyShift != shift)
                    ++g;
                if (g == ghrp_groups.size())
                    ghrp_groups.push_back({shift, {}});
                group_of[p] = g;
                continue;
            }
            const auto *chirp =
                dynamic_cast<const ChirpPolicy *>(probe.get());
            if (!chirp)
                continue;
            is_chirp[p] = true;
            const ChirpConfig &cfg = chirp->config();
            std::size_t g = 0;
            while (g < groups.size() &&
                   !(groups[g].history == cfg.history &&
                     groups[g].signatureBits == cfg.signatureBits))
                ++g;
            if (g == groups.size())
                groups.push_back({cfg.history, cfg.signatureBits, {}});
            group_of[p] = g;
        }
        computeReplayStreams(groups, ghrp_groups, *trace, events);
        // Policy-parallel batch replay (CHIRP_POLICY_PARALLEL):
        // evaluate every pending policy's table updates in one pass
        // over the shared event stream.  The pass is speculative and
        // unguarded — it consumes no fault-injection job event and no
        // watchdog slot, so the per-policy jobs below keep the exact
        // event numbering and failure isolation of the legacy path;
        // they merely publish precomputed results when the batch
        // succeeded, and fall back to an individual replayL2 when it
        // did not (or when a policy's own job must re-simulate).
        std::vector<std::size_t> pend;
        for (std::size_t p = 0; p < factories.size(); ++p) {
            if (!done[p][w])
                pend.push_back(p);
        }
        const auto make_policy = [&](std::size_t p) {
            auto policy = factories[p](sets, assoc);
            if (is_chirp[p]) {
                static_cast<ChirpPolicy *>(policy.get())
                    ->setSignatureStream(
                        groups[group_of[p]].sigs.data());
            } else if (is_ghrp[p]) {
                static_cast<GhrpPolicy *>(policy.get())
                    ->setHistoryStream(
                        ghrp_groups[group_of[p]].hists.data());
            }
            return policy;
        };
        std::vector<std::unique_ptr<Simulator>> batch_sims;
        std::vector<SimStats> batch_stats;
        bool batch_ok = false;
        if (policyParallelReplay() && pend.size() > 1) {
            try {
                std::vector<Simulator *> raw;
                batch_sims.reserve(pend.size());
                raw.reserve(pend.size());
                for (const std::size_t p : pend) {
                    batch_sims.push_back(std::make_unique<Simulator>(
                        config_, make_policy(p)));
                    raw.push_back(batch_sims.back().get());
                }
                batch_stats =
                    Simulator::replayL2Multi(raw, *trace, events, base);
                batch_ok = true;
            } catch (const std::exception &err) {
                chirp_warn("policy-parallel replay of '", suite[w].name,
                           "' failed (", err.what(),
                           "); falling back to per-policy replay");
            } catch (...) {
                chirp_warn("policy-parallel replay of '", suite[w].name,
                           "' failed; falling back to per-policy "
                           "replay");
            }
        }
        for (std::size_t k = 0; k < pend.size(); ++k) {
            const std::size_t p = pend[k];
            const GuardOutcome out = runGuarded(
                resilience_.retries, dog, w * factories.size() + p,
                suite[w].name + " x " + tag_of(p), [&, k, p] {
                    if (batch_ok) {
                        results[p][w] = {suite[w], batch_stats[k]};
                        if (observer)
                            observer(p, w, *batch_sims[k]);
                        return;
                    }
                    Simulator sim(config_, make_policy(p));
                    sim.setCancelToken(
                        dog.token(w * factories.size() + p));
                    results[p][w] = {suite[w],
                                     sim.replayL2(*trace, events, base)};
                    if (observer)
                        observer(p, w, sim);
                });
            if (out.ok && journal) {
                journal->record(RunJournal::jobKey(seq, suite[w], p),
                                results[p][w].stats);
            }
            add_outcome(w, p, out);
        }
        store.drop(suite[w]);
    };

    if (fabric && fabric->isWorker()) {
        // Worker end: announce this suite call, then execute granted
        // shards through the very same run_workload the coordinator
        // would have used, streaming each guarded outcome back.
        const std::uint64_t fp =
            suiteCallFingerprint(seq, suite, factories.size());
        if (fabric->announceSuite(seq, suite.size(), factories.size(),
                                  fp) ==
            dist::SweepFabric::SuiteRole::Skip)
            return results; // zero-shaped; coordinator kept it local
        remote_report = [&](std::size_t w, std::size_t p,
                            const GuardOutcome &out) {
            dist::RemoteOutcome remote;
            remote.ok = out.ok;
            remote.timedOut = out.timedOut;
            remote.hung = out.hung;
            remote.attempts = out.attempts;
            remote.wallNs = out.wallNs;
            remote.payload = out.ok
                                 ? encodeSimStats(results[p][w].stats)
                                 : out.error;
            fabric->reportJob(seq, w, p, remote);
        };
        fabric->workerRunSuite(
            seq, [&](std::size_t w) { run_workload(w); });
        ledger.summarize();
        return results;
    }

    // Coordinator end: shard the pending workloads across attached
    // workers; whatever the fabric cannot place (no workers, crashed
    // shards past their attempt budget) comes back for the ordinary
    // in-process path below.  Remote results land through `deliver`
    // on the fabric's service thread while this thread is parked
    // inside coordinateSuite — same slots, journal, ledger, and
    // progress ticks as local execution, so the merged CSV is
    // byte-identical to a serial run by construction.
    std::vector<std::size_t> work = pending;
    if (fabric && fabric->isCoordinator() && distributable) {
        const std::uint64_t fp =
            suiteCallFingerprint(seq, suite, factories.size());
        auto deliver = [&](std::size_t w, std::size_t p,
                           const dist::RemoteOutcome &remote) {
            if (done[p][w]) {
                // A partially-resumed workload re-runs wholesale on
                // the worker; drop the slots the journal already
                // settled (the fabric can't know about those).
                return;
            }
            GuardOutcome out;
            out.ok = remote.ok;
            out.timedOut = remote.timedOut;
            out.hung = remote.hung;
            out.attempts = remote.attempts;
            out.wallNs = remote.wallNs;
            if (remote.ok) {
                if (decodeSimStats(remote.payload,
                                   results[p][w].stats)) {
                    if (journal)
                        journal->record(
                            RunJournal::jobKey(seq, suite[w], p),
                            results[p][w].stats);
                } else {
                    out.ok = false;
                    out.error = "remote stats failed to decode";
                }
            } else {
                out.error = remote.payload;
            }
            done[p][w] = 1;
            --missing[w];
            add_outcome(w, p, out);
        };
        work = fabric->coordinateSuite(seq, suite.size(),
                                       factories.size(), fp, pending,
                                       deliver);
    }

    if (jobs <= 1 || work.size() <= 1) {
        for (std::size_t w : work)
            run_workload(w);
        ledger.summarize();
        return results;
    }

    // One job per workload: recording and the replays that reuse its
    // event stream stay on one worker, so the stream lives exactly as
    // long as the job and no cross-thread handoff is needed.  Slot-
    // indexed writes keep the merged results bit-identical to the
    // serial order no matter which worker finishes first.
    ThreadPool pool(std::min<std::size_t>(jobs, work.size()));
    std::vector<std::future<void>> in_flight;
    in_flight.reserve(work.size());
    for (std::size_t w : work)
        in_flight.push_back(pool.submit([&, w] { run_workload(w); }));
    // Jobs never throw (failures land in the ledger), so get() here
    // is pure synchronization.
    for (std::future<void> &job : in_flight)
        job.get();
    ledger.summarize();
    return results;
}

std::vector<WorkloadResult>
Runner::runSuite(const std::vector<WorkloadConfig> &suite,
                 const PolicyFactory &factory,
                 const std::string &label) const
{
    return runSuiteParallel(suite, factory, jobs_, label);
}

std::vector<WorkloadResult>
Runner::runSuiteParallel(const std::vector<WorkloadConfig> &suite,
                         const PolicyFactory &factory, unsigned jobs,
                         const std::string &label) const
{
    if (jobs == 0)
        jobs = ThreadPool::defaultConcurrency();

    RunJournal *journal = journal_.get();
    dist::SweepFabric *fabric = fabric_.get();
    if (fabric && fabric->isWorker())
        journal = nullptr;
    // Same single-counter numbering as runSuiteMulti (see there).
    std::uint64_t seq = 0;
    if (fabric)
        seq = fabric->nextSuiteSeq();
    else if (journal_)
        seq = journal_->nextSuiteSeq();
    if (fabric && fabric->isWorker()) {
        // Single-factory suites never distribute; only the
        // coordinator's CSVs are real, so answer with zero shapes.
        std::vector<WorkloadResult> zeros(suite.size());
        for (std::size_t i = 0; i < suite.size(); ++i)
            zeros[i].workload = suite[i];
        return zeros;
    }
    if (fabric && fabric->isCoordinator())
        fabric->skipSuite(seq);

    ProgressReporter progress(label, suite.size());
    const std::string tag = label.empty() ? "policy" : label;
    RunLedger ledger(tag, health_, journal != nullptr);
    Watchdog dog(resilience_.jobTimeoutMs, suite.size());

    // Every job writes only its own slot, so the merged vector is in
    // suite order and bit-identical to the serial path no matter
    // which worker finishes first, and a failed job leaves only its
    // own slot zeroed.
    std::vector<WorkloadResult> results(suite.size());
    auto run_job = [&](std::size_t i) {
        results[i].workload = suite[i];
        const std::uint64_t key =
            journal ? RunJournal::jobKey(seq, suite[i], 0) : 0;
        JobResult job;
        job.workload = suite[i].name;
        job.policy = tag;
        if (journal && journal->lookup(key, results[i].stats)) {
            job.ok = true;
            job.resumed = true;
        } else {
            const GuardOutcome out = runGuarded(
                resilience_.retries, dog, i, suite[i].name, [&] {
                    // runOne, inlined so the watchdog's cancel token
                    // reaches the simulator (and, for external
                    // workloads, the ingest front-end).
                    const std::uint32_t sets =
                        config_.tlbs.l2.entries / config_.tlbs.l2.assoc;
                    Simulator sim(
                        config_,
                        factory(sets, config_.tlbs.l2.assoc));
                    sim.setCancelToken(dog.token(i));
                    if (!suite[i].tracePath.empty()) {
                        ScopedIngestCancel ingest_cancel(dog.token(i));
                        const SharedTrace trace = store_->get(suite[i]);
                        MemoryTraceSource source(trace, suite[i].name);
                        results[i].stats = sim.run(source);
                        return;
                    }
                    const auto program = buildWorkload(suite[i]);
                    results[i].stats = sim.run(*program);
                });
            if (out.ok && journal)
                journal->record(key, results[i].stats);
            job.ok = out.ok;
            job.hung = out.hung;
            job.timedOut = out.timedOut;
            job.attempts = out.attempts;
            job.wallNs = out.wallNs;
            job.error = out.error;
        }
        ledger.add(std::move(job));
        progress.tick();
    };

    if (jobs <= 1 || suite.size() <= 1) {
        // Legacy serial path: one job after another on this thread.
        for (std::size_t i = 0; i < suite.size(); ++i)
            run_job(i);
    } else {
        ThreadPool pool(std::min<std::size_t>(jobs, suite.size()));
        std::vector<std::future<void>> pending;
        pending.reserve(suite.size());
        for (std::size_t i = 0; i < suite.size(); ++i)
            pending.push_back(pool.submit([&, i] { run_job(i); }));
        // Jobs never throw (failures land in the ledger), so get()
        // here is pure synchronization.
        for (std::future<void> &job : pending)
            job.get();
    }
    ledger.summarize();
    return results;
}

PolicyFactory
Runner::factoryFor(PolicyKind kind)
{
    return [kind](std::uint32_t sets, std::uint32_t assoc) {
        return makePolicy(kind, sets, assoc);
    };
}

SimStats
aggregateStats(const std::vector<WorkloadResult> &results)
{
    SimStats total;
    for (const WorkloadResult &r : results)
        total.merge(r.stats);
    return total;
}

double
averageMpki(const std::vector<WorkloadResult> &results)
{
    std::vector<double> mpkis;
    mpkis.reserve(results.size());
    for (const auto &r : results)
        mpkis.push_back(r.stats.mpki());
    return mean(mpkis);
}

double
mpkiReductionPct(const std::vector<WorkloadResult> &baseline,
                 const std::vector<WorkloadResult> &results)
{
    return pctReduction(averageMpki(baseline), averageMpki(results));
}

double
speedupPct(const std::vector<WorkloadResult> &baseline,
           const std::vector<WorkloadResult> &results, Cycles penalty)
{
    if (baseline.size() != results.size())
        chirp_fatal("speedup: result sets differ in size");
    std::vector<double> ipc;
    std::vector<double> base;
    ipc.reserve(results.size());
    base.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ipc.push_back(results[i].stats.ipcAtPenalty(penalty));
        base.push_back(baseline[i].stats.ipcAtPenalty(penalty));
    }
    return geomeanSpeedupPct(ipc, base);
}

double
efficiencyGainPct(const std::vector<WorkloadResult> &baseline,
                  const std::vector<WorkloadResult> &results)
{
    if (baseline.size() != results.size())
        chirp_fatal("efficiency: result sets differ in size");
    std::vector<double> gains;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const double base = baseline[i].stats.l2Efficiency;
        if (base <= 0.0)
            continue;
        gains.push_back(
            (results[i].stats.l2Efficiency / base - 1.0) * 100.0);
    }
    return mean(gains);
}

double
meanTableAccessRate(const std::vector<WorkloadResult> &results)
{
    std::vector<double> rates;
    rates.reserve(results.size());
    for (const auto &r : results)
        rates.push_back(r.stats.tableAccessRate());
    return mean(rates);
}

} // namespace chirp
