#include "sim/runner.hh"

#include <algorithm>
#include <atomic>
#include <future>

#include "core/chirp.hh"
#include "sim/simulator.hh"
#include "util/hashing.hh"
#include "util/logging.hh"
#include "util/progress.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace chirp
{

namespace
{

/**
 * Precompute the signature ChirpPolicy would compose at every L2
 * event: walk the retire stream evolving a private history set with
 * exactly the policy's update rules (onInstRetired's path filter,
 * onBranchRetired's class split) and capture
 * foldXor(history.signature(pc), signatureBits) at each event, which
 * uses the pre-update histories just as onAccessBegin does.
 *
 * The stream depends only on (HistoryConfig, signatureBits) — table
 * geometry, hash, thresholds and training knobs never touch the
 * histories — so configuration-sweep variants sharing those fields
 * share one stream.
 */
std::vector<std::uint16_t>
chirpSignatureStream(const HistoryConfig &history_config,
                     unsigned signature_bits,
                     const std::vector<TraceRecord> &records,
                     const std::vector<L2Event> &events)
{
    std::vector<std::uint16_t> sigs;
    sigs.reserve(events.size());
    ControlFlowHistory history(history_config);
    std::size_t e = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        while (e < events.size() && events[e].now == i) {
            sigs.push_back(static_cast<std::uint16_t>(foldXor(
                history.signature(events[e].pc), signature_bits)));
            ++e;
        }
        if (e == events.size())
            break; // trailing records can no longer matter
        const TraceRecord &rec = records[i];
        bool on_path = true;
        switch (history_config.pathFilter) {
          case PathFilter::All:
            break;
          case PathFilter::Memory:
            on_path = isMemory(rec.cls);
            break;
          case PathFilter::Branch:
            on_path = isBranch(rec.cls);
            break;
        }
        if (on_path)
            history.onAccess(rec.pc);
        if (rec.cls == InstClass::CondBranch)
            history.onCondBranch(rec.pc);
        else if (rec.cls == InstClass::UncondIndirect)
            history.onUncondIndirectBranch(rec.pc);
    }
    return sigs;
}

} // namespace

Runner::Runner(const SimConfig &config, unsigned jobs)
    : config_(config), jobs_(jobs),
      store_(std::make_shared<TraceStore>())
{
}

SimStats
Runner::runOne(const WorkloadConfig &workload,
               const PolicyFactory &factory) const
{
    const auto program = buildWorkload(workload);
    const std::uint32_t sets =
        config_.tlbs.l2.entries / config_.tlbs.l2.assoc;
    Simulator sim(config_, factory(sets, config_.tlbs.l2.assoc));
    return sim.run(*program);
}

SimStats
Runner::runReplay(const WorkloadConfig &workload,
                  const SharedTrace &trace,
                  const PolicyFactory &factory) const
{
    const std::uint32_t sets =
        config_.tlbs.l2.entries / config_.tlbs.l2.assoc;
    MemoryTraceSource source(trace, workload.name);
    Simulator sim(config_, factory(sets, config_.tlbs.l2.assoc));
    return sim.run(source);
}

void
Runner::setTraceCacheDir(const std::string &dir)
{
    store_ = std::make_shared<TraceStore>(dir);
}

std::vector<std::vector<WorkloadResult>>
Runner::runSuiteMulti(const std::vector<WorkloadConfig> &suite,
                      const std::vector<PolicyFactory> &factories,
                      const std::string &label,
                      const SimObserver &observer) const
{
    std::vector<std::vector<WorkloadResult>> results(factories.size());
    if (factories.empty() || suite.empty())
        return results;
    for (auto &per_policy : results)
        per_policy.resize(suite.size());

    const std::uint32_t sets =
        config_.tlbs.l2.entries / config_.tlbs.l2.assoc;
    const std::uint32_t assoc = config_.tlbs.l2.assoc;
    TraceStore &store = *store_;
    ProgressReporter progress(label, suite.size() * factories.size());

    unsigned jobs = jobs_;
    if (jobs == 0)
        jobs = ThreadPool::defaultConcurrency();

    if (forceVirtualDispatch()) {
        // Legacy path (CHIRP_FORCE_VIRTUAL): full simulation of every
        // (workload, policy) pair.  The equality tests diff this
        // against the record/replay fast path below, so it must stay
        // the reference implementation.
        auto run_job = [&](std::size_t w, std::size_t p) {
            const SharedTrace trace = store.get(suite[w]);
            MemoryTraceSource source(trace, suite[w].name);
            Simulator sim(config_, factories[p](sets, assoc));
            results[p][w] = {suite[w], sim.run(source)};
            if (observer)
                observer(p, w, sim);
            progress.tick();
        };
        const std::size_t total = suite.size() * factories.size();
        if (jobs <= 1 || total <= 1) {
            for (std::size_t w = 0; w < suite.size(); ++w) {
                for (std::size_t p = 0; p < factories.size(); ++p)
                    run_job(w, p);
                store.drop(suite[w]);
            }
            return results;
        }
        ThreadPool pool(std::min<std::size_t>(jobs, total));
        // remaining[w] counts policies still to replay workload w;
        // the job that takes it to zero drops the store's reference.
        // Jobs are submitted workload-major, so a FIFO pool keeps
        // only about ceil(jobs / P) + 1 traces materialized at once.
        std::vector<std::atomic<std::size_t>> remaining(suite.size());
        for (auto &count : remaining)
            count.store(factories.size());
        std::vector<std::future<void>> pending;
        pending.reserve(total);
        for (std::size_t w = 0; w < suite.size(); ++w) {
            for (std::size_t p = 0; p < factories.size(); ++p) {
                pending.push_back(pool.submit([&, w, p] {
                    run_job(w, p);
                    if (remaining[w].fetch_sub(1) == 1)
                        store.drop(suite[w]);
                }));
            }
        }
        // get() rethrows the first job failure; the pool destructor
        // then abandons unstarted jobs so teardown stays prompt.
        for (std::future<void> &job : pending)
            job.get();
        return results;
    }

    // Fast path: one full simulation per workload (the recorder, a
    // throwaway LRU whose results are discarded) captures the L2
    // event stream, which is policy-independent because the plain-LRU
    // L1 TLBs never consult the L2.  Every requested policy then
    // replays just that stream — a small fraction of the records —
    // through Simulator::replayL2, which reconstructs bit-identical
    // full-run statistics from the recorder's baseline.
    auto run_workload = [&](std::size_t w) {
        const SharedTrace trace = store.get(suite[w]);
        std::vector<L2Event> events;
        SimStats base;
        {
            MemoryTraceSource source(trace, suite[w].name);
            Simulator recorder(config_,
                               makePolicy(PolicyKind::Lru, sets, assoc));
            recorder.tlbs().setL2EventSink(&events);
            base = recorder.run(source);
        }
        // Construct every policy up front: CHiRP variants whose
        // signatures are configured identically (same history shape
        // and signature width — the common case in parameter sweeps)
        // share one precomputed signature stream, so the retire
        // stream is walked once per distinct configuration instead of
        // once per variant.
        std::vector<std::unique_ptr<ReplacementPolicy>> policies(
            factories.size());
        std::vector<ChirpPolicy *> chirps(factories.size(), nullptr);
        for (std::size_t p = 0; p < factories.size(); ++p) {
            policies[p] = factories[p](sets, assoc);
            chirps[p] = dynamic_cast<ChirpPolicy *>(policies[p].get());
        }
        struct SigGroup
        {
            HistoryConfig history;
            unsigned signatureBits;
            std::vector<std::uint16_t> sigs;
        };
        std::vector<SigGroup> groups;
        std::vector<std::size_t> group_of(factories.size(), 0);
        for (std::size_t p = 0; p < factories.size(); ++p) {
            if (!chirps[p])
                continue;
            const ChirpConfig &cfg = chirps[p]->config();
            std::size_t g = 0;
            while (g < groups.size() &&
                   !(groups[g].history == cfg.history &&
                     groups[g].signatureBits == cfg.signatureBits))
                ++g;
            if (g == groups.size()) {
                groups.push_back(
                    {cfg.history, cfg.signatureBits,
                     chirpSignatureStream(cfg.history, cfg.signatureBits,
                                          *trace, events)});
            }
            group_of[p] = g;
        }
        for (std::size_t p = 0; p < factories.size(); ++p) {
            if (chirps[p])
                chirps[p]->setSignatureStream(
                    groups[group_of[p]].sigs.data());
            Simulator sim(config_, std::move(policies[p]));
            results[p][w] = {suite[w],
                             sim.replayL2(*trace, events, base)};
            if (observer)
                observer(p, w, sim);
            progress.tick();
        }
        store.drop(suite[w]);
    };

    if (jobs <= 1 || suite.size() <= 1) {
        for (std::size_t w = 0; w < suite.size(); ++w)
            run_workload(w);
        return results;
    }

    // One job per workload: recording and the replays that reuse its
    // event stream stay on one worker, so the stream lives exactly as
    // long as the job and no cross-thread handoff is needed.  Slot-
    // indexed writes keep the merged results bit-identical to the
    // serial order no matter which worker finishes first.
    ThreadPool pool(std::min<std::size_t>(jobs, suite.size()));
    std::vector<std::future<void>> pending;
    pending.reserve(suite.size());
    for (std::size_t w = 0; w < suite.size(); ++w)
        pending.push_back(pool.submit([&, w] { run_workload(w); }));
    // get() rethrows the first job failure; the pool destructor then
    // abandons unstarted jobs so teardown stays prompt.
    for (std::future<void> &job : pending)
        job.get();
    return results;
}

std::vector<WorkloadResult>
Runner::runSuite(const std::vector<WorkloadConfig> &suite,
                 const PolicyFactory &factory,
                 const std::string &label) const
{
    return runSuiteParallel(suite, factory, jobs_, label);
}

std::vector<WorkloadResult>
Runner::runSuiteParallel(const std::vector<WorkloadConfig> &suite,
                         const PolicyFactory &factory, unsigned jobs,
                         const std::string &label) const
{
    if (jobs == 0)
        jobs = ThreadPool::defaultConcurrency();

    ProgressReporter progress(label, suite.size());

    if (jobs <= 1 || suite.size() <= 1) {
        // Legacy serial path: one job after another on this thread.
        std::vector<WorkloadResult> results;
        results.reserve(suite.size());
        for (const WorkloadConfig &workload : suite) {
            results.push_back({workload, runOne(workload, factory)});
            progress.tick();
        }
        return results;
    }

    // Shard one job per (workload) across the pool.  Every job
    // builds its own Program and policy instance from the workload
    // seed, writes only its own slot, and ticks the shared reporter;
    // slot-indexed writes mean the merged vector is in suite order
    // and bit-identical to the serial path no matter which worker
    // finishes first.
    std::vector<WorkloadResult> results(suite.size());
    ThreadPool pool(std::min<std::size_t>(jobs, suite.size()));
    std::vector<std::future<void>> pending;
    pending.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        pending.push_back(pool.submit([&, i] {
            results[i] = {suite[i], runOne(suite[i], factory)};
            progress.tick();
        }));
    }
    // get() rethrows the first job failure; the pool destructor then
    // abandons unstarted jobs so teardown stays prompt.
    for (std::future<void> &job : pending)
        job.get();
    return results;
}

PolicyFactory
Runner::factoryFor(PolicyKind kind)
{
    return [kind](std::uint32_t sets, std::uint32_t assoc) {
        return makePolicy(kind, sets, assoc);
    };
}

SimStats
aggregateStats(const std::vector<WorkloadResult> &results)
{
    SimStats total;
    for (const WorkloadResult &r : results)
        total.merge(r.stats);
    return total;
}

double
averageMpki(const std::vector<WorkloadResult> &results)
{
    std::vector<double> mpkis;
    mpkis.reserve(results.size());
    for (const auto &r : results)
        mpkis.push_back(r.stats.mpki());
    return mean(mpkis);
}

double
mpkiReductionPct(const std::vector<WorkloadResult> &baseline,
                 const std::vector<WorkloadResult> &results)
{
    return pctReduction(averageMpki(baseline), averageMpki(results));
}

double
speedupPct(const std::vector<WorkloadResult> &baseline,
           const std::vector<WorkloadResult> &results, Cycles penalty)
{
    if (baseline.size() != results.size())
        chirp_fatal("speedup: result sets differ in size");
    std::vector<double> ipc;
    std::vector<double> base;
    ipc.reserve(results.size());
    base.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ipc.push_back(results[i].stats.ipcAtPenalty(penalty));
        base.push_back(baseline[i].stats.ipcAtPenalty(penalty));
    }
    return geomeanSpeedupPct(ipc, base);
}

double
efficiencyGainPct(const std::vector<WorkloadResult> &baseline,
                  const std::vector<WorkloadResult> &results)
{
    if (baseline.size() != results.size())
        chirp_fatal("efficiency: result sets differ in size");
    std::vector<double> gains;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const double base = baseline[i].stats.l2Efficiency;
        if (base <= 0.0)
            continue;
        gains.push_back(
            (results[i].stats.l2Efficiency / base - 1.0) * 100.0);
    }
    return mean(gains);
}

double
meanTableAccessRate(const std::vector<WorkloadResult> &results)
{
    std::vector<double> rates;
    rates.reserve(results.size());
    for (const auto &r : results)
        rates.push_back(r.stats.tableAccessRate());
    return mean(rates);
}

} // namespace chirp
