/**
 * @file
 * Extra bench: multi-process context-switch study.
 *
 * Pairs of workloads share the machine round-robin; we compare
 * ASID-tagged TLBs against flush-on-switch hardware, under LRU and
 * under CHiRP, across context-switch quanta.  Shows (a) the cost of
 * losing translations at switches and (b) that CHiRP's gains survive
 * multiprogramming — its histories are global, so a policy trained
 * by one process's control flow keeps working when processes
 * interleave.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "sim/simulator.hh"

using namespace chirp;
using namespace chirp::bench;

namespace
{

double
runPairs(const BenchContext &ctx, PolicyKind kind, InstCount quantum,
         bool flush)
{
    // Pair workload 2i with 2i+1.
    double mpki_sum = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i + 1 < ctx.suite.size(); i += 2) {
        auto a = buildWorkload(ctx.suite[i]);
        auto b = buildWorkload(ctx.suite[i + 1]);
        const std::uint32_t sets =
            ctx.config.tlbs.l2.entries / ctx.config.tlbs.l2.assoc;
        Simulator sim(ctx.config,
                      makePolicy(kind, sets, ctx.config.tlbs.l2.assoc));
        const SimStats stats =
            sim.runInterleaved({a.get(), b.get()}, quantum, flush);
        mpki_sum += stats.mpki();
        ++pairs;
        std::fprintf(stderr, "\r  [%s q=%llu%s] %d pairs",
                     policyKindName(kind),
                     static_cast<unsigned long long>(quantum),
                     flush ? " flush" : "", pairs);
    }
    std::fprintf(stderr, "\n");
    return pairs ? mpki_sum / pairs : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 24, /*mpki_only=*/true);
    printBanner("Extension study: context switches (ASID vs flush)",
                ctx);

    TableFormatter table;
    table.header({"quantum", "lru+asid", "lru+flush", "chirp+asid",
                  "chirp+flush"});
    CsvWriter csv("context_switch_study.csv");
    csv.row({"quantum", "lru_asid_mpki", "lru_flush_mpki",
             "chirp_asid_mpki", "chirp_flush_mpki"});

    for (const InstCount quantum : {2000ull, 10000ull, 50000ull}) {
        std::vector<std::string> row = {
            TableFormatter::num(std::uint64_t{quantum})};
        for (const PolicyKind kind :
             {PolicyKind::Lru, PolicyKind::Chirp}) {
            for (const bool flush : {false, true}) {
                row.push_back(TableFormatter::num(
                    runPairs(ctx, kind, quantum, flush), 3));
            }
        }
        // Reorder: lru+asid, lru+flush, chirp+asid, chirp+flush is
        // already the natural fill order above.
        table.row(row);
        csv.row(row);
    }
    table.print();
    std::printf("\naverage L2 TLB MPKI per pair of co-scheduled "
                "workloads.\nCSV written to context_switch_study.csv\n");
    return finish(ctx);
}
