/**
 * @file
 * Extra bench: Bélády (OPT) bound for L2 TLB misses, against LRU and
 * CHiRP.  Not a paper figure — it contextualizes how much headroom
 * any replacement policy has on this suite (the paper cites
 * Bélády [68] as the unreachable reference point).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "sim/opt_bound.hh"

using namespace chirp;
using namespace chirp::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 24, /*mpki_only=*/true);
    printBanner("OPT (Belady) bound vs LRU and CHiRP", ctx);

    const Runner runner = ctx.runner();
    const auto lru = runner.runSuite(
        ctx.suite, Runner::factoryFor(PolicyKind::Lru), "lru");
    const auto chirp_results = runner.runSuite(
        ctx.suite, Runner::factoryFor(PolicyKind::Chirp), "chirp");

    double lru_sum = 0.0;
    double chirp_sum = 0.0;
    double opt_sum = 0.0;
    CsvWriter csv("opt_bound.csv");
    csv.row({"workload", "lru_mpki", "chirp_mpki", "opt_mpki"});
    for (std::size_t i = 0; i < ctx.suite.size(); ++i) {
        const auto program = buildWorkload(ctx.suite[i]);
        const OptBoundResult opt = computeOptBound(*program);
        lru_sum += lru[i].stats.mpki();
        chirp_sum += chirp_results[i].stats.mpki();
        opt_sum += opt.mpki();
        csv.row({ctx.suite[i].name,
                 TableFormatter::num(lru[i].stats.mpki(), 4),
                 TableFormatter::num(chirp_results[i].stats.mpki(), 4),
                 TableFormatter::num(opt.mpki(), 4)});
        std::fprintf(stderr, "  [opt] %zu/%zu\r", i + 1,
                     ctx.suite.size());
    }
    std::fprintf(stderr, "\n");

    const double n = static_cast<double>(ctx.suite.size());
    TableFormatter table;
    table.header({"policy", "avg MPKI", "reduction % vs LRU"});
    table.row({"lru", TableFormatter::num(lru_sum / n, 3), "0.00"});
    table.row({"chirp", TableFormatter::num(chirp_sum / n, 3),
               TableFormatter::num((1 - chirp_sum / lru_sum) * 100, 2)});
    table.row({"opt (bound)", TableFormatter::num(opt_sum / n, 3),
               TableFormatter::num((1 - opt_sum / lru_sum) * 100, 2)});
    table.print();
    std::printf("\nCHiRP captures %.1f%% of the OPT headroom.\n",
                100.0 * (lru_sum - chirp_sum) / (lru_sum - opt_sum));
    std::printf("CSV written to opt_bound.csv\n");
    return finish(ctx);
}
