/**
 * @file
 * Extra ablation bench: sweep CHiRP's design-choice knobs one axis
 * at a time around the paper configuration and report the MPKI
 * reduction plus the dead-victim coverage each point achieves.
 *
 * Not a paper figure; this is the instrument behind the design
 * discussion in DESIGN.md (counter width, dead threshold, update
 * filters, hash choice, eviction-training scope).
 */

#include <cstdio>
#include <functional>
#include <mutex>

#include "bench/harness.hh"
#include "core/chirp.hh"
#include "sim/simulator.hh"
#include "tlb/tlb_hierarchy.hh"

using namespace chirp;
using namespace chirp::bench;

namespace
{

struct Point
{
    std::string name;
    ChirpConfig config;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 18, /*mpki_only=*/true);
    printBanner("CHiRP design-knob sweep (one axis at a time)", ctx);

    std::vector<Point> points;
    auto add = [&](std::string name,
                   const std::function<void(ChirpConfig &)> &tweak) {
        ChirpConfig config;
        tweak(config);
        points.push_back({std::move(name), config});
    };

    add("default", [](ChirpConfig &) {});
    add("threshold=0", [](ChirpConfig &c) { c.deadThreshold = 0; });
    add("threshold=1", [](ChirpConfig &c) { c.deadThreshold = 1; });
    add("threshold=3(3b)", [](ChirpConfig &c) {
        c.counterBits = 3;
        c.deadThreshold = 3;
    });
    add("threshold=5(3b)", [](ChirpConfig &c) {
        c.counterBits = 3;
        c.deadThreshold = 5;
    });
    add("hit=every", [](ChirpConfig &c) {
        c.hitUpdate = HitUpdateMode::Every;
    });
    add("hit=firstHit", [](ChirpConfig &c) {
        c.hitUpdate = HitUpdateMode::FirstHit;
    });
    add("train-all-evictions", [](ChirpConfig &c) {
        c.trainOnLruEvictionOnly = false;
    });
    add("path=4", [](ChirpConfig &c) { c.history.pathEvents = 4; });
    add("path=8", [](ChirpConfig &c) { c.history.pathEvents = 8; });
    add("path=32", [](ChirpConfig &c) { c.history.pathEvents = 32; });
    add("hash=fold", [](ChirpConfig &c) { c.hash = HashKind::Fold; });
    add("hash=crc", [](ChirpConfig &c) { c.hash = HashKind::Crc; });
    add("pcbits=4", [](ChirpConfig &c) { c.history.pathPcBits = 4; });
    add("pc-lowbit=0", [](ChirpConfig &c) { c.history.pathPcLowBit = 0; });
    add("path=all-insts", [](ChirpConfig &c) {
        c.history.pathFilter = PathFilter::All;
    });
    add("path=branches", [](ChirpConfig &c) {
        c.history.pathFilter = PathFilter::Branch;
    });

    // Single multi-policy run: the LRU baseline (slot 0) plus one
    // CHiRP variant per sweep point all replay each workload's
    // materialized trace, so the dozens of configs cost one trace
    // generation per workload in total.  Dead-victim coverage comes
    // from the per-job observer, which reads the policy's diagnostic
    // counters while its simulator is still alive; the sums are
    // order-independent, so any job count reports the same coverage.
    std::vector<PolicyFactory> factories = {
        Runner::factoryFor(PolicyKind::Lru)};
    for (const Point &point : points) {
        const ChirpConfig config = point.config;
        factories.push_back(
            [config](std::uint32_t sets, std::uint32_t assoc) {
                return makeChirp(sets, assoc, config);
            });
    }

    std::mutex counter_mutex;
    std::vector<std::uint64_t> dead(factories.size(), 0);
    std::vector<std::uint64_t> fallback(factories.size(), 0);
    const SimObserver observer = [&](std::size_t p, std::size_t,
                                     const Simulator &sim) {
        const auto *policy = dynamic_cast<const ChirpPolicy *>(
            &sim.tlbs().l2().policy());
        if (!policy)
            return;
        std::lock_guard<std::mutex> lock(counter_mutex);
        dead[p] += policy->deadVictims();
        fallback[p] += policy->lruVictims();
    };

    const Runner runner = ctx.runner();
    const auto all =
        runner.runSuiteMulti(ctx.suite, factories, "sweep", observer);
    const auto &lru = all[0];

    TableFormatter table;
    table.header({"variant", "MPKI reduction %", "dead-victim %"});
    CsvWriter csv("chirp_param_sweep.csv");
    csv.row({"variant", "reduction_pct", "dead_victim_pct"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &point = points[i];
        const double reduction = mpkiReductionPct(lru, all[i + 1]);
        const std::uint64_t total = dead[i + 1] + fallback[i + 1];
        const double coverage =
            total ? 100.0 * static_cast<double>(dead[i + 1]) /
                        static_cast<double>(total)
                  : 0.0;
        std::fprintf(stderr, "  %-20s %+6.2f%%  dead-victims %5.1f%%\n",
                     point.name.c_str(), reduction, coverage);
        table.row({point.name, TableFormatter::num(reduction, 2),
                   TableFormatter::num(coverage, 1)});
        csv.row({point.name, TableFormatter::num(reduction, 3),
                 TableFormatter::num(coverage, 2)});
    }
    table.print();
    std::printf("\nCSV written to chirp_param_sweep.csv\n");
    return finish(ctx);
}
