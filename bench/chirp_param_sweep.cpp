/**
 * @file
 * Extra ablation bench: sweep CHiRP's design-choice knobs one axis
 * at a time around the paper configuration and report the MPKI
 * reduction plus the dead-victim coverage each point achieves.
 *
 * Not a paper figure; this is the instrument behind the design
 * discussion in DESIGN.md (counter width, dead threshold, update
 * filters, hash choice, eviction-training scope).
 */

#include <cstdio>
#include <functional>

#include "bench/harness.hh"
#include "core/chirp.hh"
#include "sim/simulator.hh"

using namespace chirp;
using namespace chirp::bench;

namespace
{

struct Point
{
    std::string name;
    ChirpConfig config;
};

/** Run one config over the suite; returns {reduction%, dead-victim%}. */
std::pair<double, double>
evaluate(const BenchContext &ctx, const std::vector<WorkloadResult> &lru,
         const ChirpConfig &config)
{
    const Runner runner = ctx.runner();
    // Track dead-victim coverage across the suite by re-running one
    // simulator per workload and summing the diagnostic counters.
    std::uint64_t dead = 0;
    std::uint64_t fallback = 0;
    std::vector<WorkloadResult> results;
    for (const auto &workload : ctx.suite) {
        const auto program = buildWorkload(workload);
        const std::uint32_t sets =
            ctx.config.tlbs.l2.entries / ctx.config.tlbs.l2.assoc;
        auto policy =
            makeChirp(sets, ctx.config.tlbs.l2.assoc, config);
        const ChirpPolicy *raw = policy.get();
        Simulator sim(ctx.config, std::move(policy));
        results.push_back({workload, sim.run(*program)});
        dead += raw->deadVictims();
        fallback += raw->lruVictims();
    }
    const double coverage =
        dead + fallback
            ? 100.0 * static_cast<double>(dead) /
                  static_cast<double>(dead + fallback)
            : 0.0;
    return {mpkiReductionPct(lru, results), coverage};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 18, /*mpki_only=*/true);
    printBanner("CHiRP design-knob sweep (one axis at a time)", ctx);

    const Runner runner = ctx.runner();
    const auto lru = runner.runSuite(
        ctx.suite, Runner::factoryFor(PolicyKind::Lru), "lru");

    std::vector<Point> points;
    auto add = [&](std::string name,
                   const std::function<void(ChirpConfig &)> &tweak) {
        ChirpConfig config;
        tweak(config);
        points.push_back({std::move(name), config});
    };

    add("default", [](ChirpConfig &) {});
    add("threshold=0", [](ChirpConfig &c) { c.deadThreshold = 0; });
    add("threshold=1", [](ChirpConfig &c) { c.deadThreshold = 1; });
    add("threshold=3(3b)", [](ChirpConfig &c) {
        c.counterBits = 3;
        c.deadThreshold = 3;
    });
    add("threshold=5(3b)", [](ChirpConfig &c) {
        c.counterBits = 3;
        c.deadThreshold = 5;
    });
    add("hit=every", [](ChirpConfig &c) {
        c.hitUpdate = HitUpdateMode::Every;
    });
    add("hit=firstHit", [](ChirpConfig &c) {
        c.hitUpdate = HitUpdateMode::FirstHit;
    });
    add("train-all-evictions", [](ChirpConfig &c) {
        c.trainOnLruEvictionOnly = false;
    });
    add("path=4", [](ChirpConfig &c) { c.history.pathEvents = 4; });
    add("path=8", [](ChirpConfig &c) { c.history.pathEvents = 8; });
    add("path=32", [](ChirpConfig &c) { c.history.pathEvents = 32; });
    add("hash=fold", [](ChirpConfig &c) { c.hash = HashKind::Fold; });
    add("hash=crc", [](ChirpConfig &c) { c.hash = HashKind::Crc; });
    add("pcbits=4", [](ChirpConfig &c) { c.history.pathPcBits = 4; });
    add("pc-lowbit=0", [](ChirpConfig &c) { c.history.pathPcLowBit = 0; });
    add("path=all-insts", [](ChirpConfig &c) {
        c.history.pathFilter = PathFilter::All;
    });
    add("path=branches", [](ChirpConfig &c) {
        c.history.pathFilter = PathFilter::Branch;
    });

    TableFormatter table;
    table.header({"variant", "MPKI reduction %", "dead-victim %"});
    CsvWriter csv("chirp_param_sweep.csv");
    csv.row({"variant", "reduction_pct", "dead_victim_pct"});
    for (const Point &point : points) {
        const auto [reduction, coverage] =
            evaluate(ctx, lru, point.config);
        std::fprintf(stderr, "  %-20s %+6.2f%%  dead-victims %5.1f%%\n",
                     point.name.c_str(), reduction, coverage);
        table.row({point.name, TableFormatter::num(reduction, 2),
                   TableFormatter::num(coverage, 1)});
        csv.row({point.name, TableFormatter::num(reduction, 3),
                 TableFormatter::num(coverage, 2)});
    }
    table.print();
    std::printf("\nCSV written to chirp_param_sweep.csv\n");
    return 0;
}
