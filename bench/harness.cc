#include "bench/harness.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "trace/ingest/ingest.hh"
#include "trace/trace_store.hh"
#include "util/fault_injection.hh"
#include "util/hashing.hh"
#include "util/logging.hh"
#include "util/quarantine.hh"
#include "util/thread_pool.hh"

namespace chirp::bench
{

namespace
{

unsigned
parseJobs(const char *text)
{
    char *end = nullptr;
    const unsigned long value = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0')
        chirp_fatal("--jobs expects a non-negative integer, got '", text,
                    "'");
    return static_cast<unsigned>(value);
}

std::uint64_t
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        chirp_fatal(flag, " expects a non-negative integer, got '",
                    text, "'");
    return value;
}

std::string
benchBasename(const char *argv0)
{
    std::string name = argv0 ? argv0 : "bench";
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name.erase(0, slash + 1);
    return name;
}

/** "<argv0 basename>.csv.journal" — the sidecar of the bench's CSV. */
std::string
defaultJournalPath(const char *argv0)
{
    return benchBasename(argv0) + ".csv.journal";
}

std::string
absolutePath(const std::string &path)
{
    if (path.empty() || path[0] == '/')
        return path;
    char cwd[4096];
    if (!::getcwd(cwd, sizeof(cwd)))
        chirp_fatal("getcwd: ", std::strerror(errno));
    return std::string(cwd) + "/" + path;
}

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Last path component without its extension: "a/b/t.champsim" -> "t". */
std::string
traceWorkloadName(const std::string &path)
{
    std::string name = path;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name.erase(0, slash + 1);
    const std::size_t dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        name.erase(dot);
    return name.empty() ? "trace" : name;
}

/**
 * When CHIRP_TRACE_IN names one or more external trace files
 * (comma-separated), replace the synthetic suite with one workload
 * per file.  Paths are absolutized and republished through the
 * environment so --workers children — which chdir into per-worker
 * scratch directories before building their suite — resolve the same
 * files.  The format choice is validated eagerly so a typo fails the
 * run up front rather than inside the first sharded job.
 */
void
applyExternalSuite(BenchContext &ctx)
{
    const char *env = std::getenv("CHIRP_TRACE_IN");
    if (!env)
        return;
    if (!*env)
        chirp_fatal("CHIRP_TRACE_IN is set but empty; expected one or "
                    "more trace file paths (comma-separated)");
    externalTraceFormatFromEnv(); // validate now, not at first use
    std::vector<std::string> paths;
    const std::string list(env);
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            paths.push_back(absolutePath(list.substr(start,
                                                     comma - start)));
        start = comma + 1;
    }
    if (paths.empty())
        chirp_fatal("CHIRP_TRACE_IN contains no paths");
    std::string joined;
    for (const std::string &p : paths) {
        if (!joined.empty())
            joined += ',';
        joined += p;
    }
    ::setenv("CHIRP_TRACE_IN", joined.c_str(), 1);
    std::vector<WorkloadConfig> suite;
    for (const std::string &path : paths) {
        WorkloadConfig config;
        config.tracePath = path;
        config.name = traceWorkloadName(path);
        // Distinct names even when two files share a basename.
        for (const WorkloadConfig &prior : suite) {
            if (prior.name == config.name) {
                config.name += '.';
                config.name += std::to_string(suite.size());
                break;
            }
        }
        config.seed = fnv1a(path);
        config.length = 0; // stream content comes from the file
        suite.push_back(std::move(config));
    }
    ctx.suite = std::move(suite);
}

/**
 * Turn this process into sweep-fabric worker: attach the wire,
 * target the fault injector, silence journaling, and relocate into a
 * per-worker scratch directory so the worker's CSVs can never
 * clobber the coordinator's.
 */
void
enterWorkerMode(BenchContext &ctx, int worker_fd, unsigned worker_id,
                const std::string &connect_path)
{
    const dist::FabricOptions opts = dist::fabricOptionsFromEnv();
    std::shared_ptr<dist::SweepFabric> fabric;
    if (worker_fd >= 0)
        fabric = dist::SweepFabric::makeWorker(worker_fd, worker_id,
                                               opts);
    else
        fabric = dist::SweepFabric::connectWorker(connect_path, opts);
    FaultInjector::instance().setWorkerId(
        static_cast<int>(fabric->workerId()));
    // Only the coordinator journals and resumes; a worker journal
    // would race it on the same sidecar.
    ctx.journalPath.clear();
    ctx.resume = false;
    // The scratch chdir below must not strand a shared trace cache.
    ctx.traceCacheDir = absolutePath(ctx.traceCacheDir);
    const std::string root = "chirp-workers";
    if (::mkdir(root.c_str(), 0777) != 0 && errno != EEXIST)
        chirp_fatal("mkdir ", root, ": ", std::strerror(errno));
    const std::string dir =
        root + "/w" + std::to_string(fabric->workerId());
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        chirp_fatal("mkdir ", dir, ": ", std::strerror(errno));
    if (::chdir(dir.c_str()) != 0)
        chirp_fatal("chdir ", dir, ": ", std::strerror(errno));
    // Ship every warn/inform/progress line to the coordinator, which
    // prefixes it with this worker's id on one serialized stderr.
    std::shared_ptr<dist::SweepFabric> sink = fabric;
    setLogSink([sink](const std::string &line) {
        sink->emitLog(line);
    });
    ctx.fabric = std::move(fabric);
}

/**
 * Make this process the sweep coordinator: open the fabric (with the
 * shard ledger next to the journal) and fork the requested local
 * workers as re-executions of this binary.
 */
void
enterCoordinatorMode(BenchContext &ctx, const char *argv0,
                     unsigned workers,
                     const std::string &socket_path)
{
    dist::FabricOptions opts = dist::fabricOptionsFromEnv();
    opts.socketPath = socket_path;
    if (!ctx.journalPath.empty()) {
        opts.ledgerPath = ctx.journalPath + ".shards";
        opts.ledgerFingerprint = ctx.fingerprint();
        opts.ledgerResume = ctx.resume;
    }
    // Without a trace cache every worker process regenerates every
    // workload it is sharded — N workers pay the whole suite's
    // generation N times over.  Default sharded runs to an on-disk
    // cache next to the results: the first process to need a trace
    // publishes it (write-to-temp + rename, so concurrent writers are
    // safe) and everyone else loads — or, on the mmap tier, maps —
    // that one copy.
    if (ctx.shareTraces && ctx.traceCacheDir.empty())
        ctx.traceCacheDir = "chirp-trace-cache";
    ctx.fabric = dist::SweepFabric::makeCoordinator(opts);

    // Workers re-execute this binary: same environment, so the same
    // suite; fabric-free argv plus the worker flags spawnWorker
    // appends.  execv needs a real path — argv[0] without a slash
    // (PATH lookup) won't do, so fall back to /proc/self/exe.
    std::string self = argv0 ? argv0 : "";
    if (self.find('/') == std::string::npos)
        self = "/proc/self/exe";
    std::vector<std::string> argv{self, "--jobs", "1", "--no-journal"};
    argv.push_back("--retries");
    argv.push_back(std::to_string(ctx.resilience.retries));
    if (ctx.resilience.jobTimeoutMs) {
        argv.push_back("--job-timeout");
        argv.push_back(std::to_string(ctx.resilience.jobTimeoutMs));
    }
    if (!ctx.traceCacheDir.empty()) {
        argv.push_back("--trace-cache");
        argv.push_back(absolutePath(ctx.traceCacheDir));
    }
    if (!ctx.shareTraces)
        argv.push_back("--no-trace-store");
    for (unsigned i = 0; i < workers; ++i) {
        if (!ctx.fabric->spawnWorker(argv))
            chirp_warn("failed to spawn worker ", i,
                       "; continuing with fewer");
    }
}

} // namespace

unsigned
jobsFromEnv()
{
    if (const char *env = std::getenv("CHIRP_JOBS"))
        return parseJobs(env);
    return ThreadPool::defaultConcurrency();
}

BenchContext
makeContext(std::size_t default_suite_size, bool mpki_only)
{
    BenchContext ctx;
    ctx.options = suiteOptionsFromEnv(default_suite_size);
    ctx.suite = makeSuite(ctx.options);
    ctx.jobs = jobsFromEnv();
    if (const char *env = std::getenv("CHIRP_TRACE_CACHE"); env && *env)
        ctx.traceCacheDir = env;
    if (mpki_only) {
        ctx.config.simulateCaches = false;
        ctx.config.simulateBranch = false;
    }
    if (const char *env = std::getenv("CHIRP_RETRIES"); env && *env) {
        ctx.resilience.retries = static_cast<unsigned>(
            parseCount("CHIRP_RETRIES", env));
    }
    if (const char *env = std::getenv("CHIRP_JOB_TIMEOUT_MS");
        env && *env) {
        ctx.resilience.jobTimeoutMs =
            parseCount("CHIRP_JOB_TIMEOUT_MS", env);
    }
    applyExternalSuite(ctx);
    return ctx;
}

JournalIdentity
BenchContext::identity() const
{
    JournalIdentity id;
    id.suite = benchName;
    std::uint64_t sh = mix64(0x43484952ull /* "CHIR" */);
    sh = hashCombine(sh, suite.size());
    sh = hashCombine(sh, options.traceLength);
    sh = hashCombine(sh, options.baseSeed);
    sh = hashCombine(sh, static_cast<std::uint64_t>(
                             options.onlyCategory + 1));
    // External suites are defined by their files, not the synthetic
    // knobs above; fold the paths so swapping traces refuses a resume.
    for (const WorkloadConfig &workload : suite) {
        if (!workload.tracePath.empty())
            sh = hashCombine(sh, fnv1a(workload.tracePath));
    }
    id.suiteHash = sh;
    std::uint64_t ch = mix64(0x434647ull /* "CFG" */);
    ch = hashCombine(ch, config.simulateCaches ? 1 : 0);
    ch = hashCombine(ch, config.simulateBranch ? 1 : 0);
    ch = hashCombine(ch, config.tlbs.l2.entries);
    id.configHash = hashCombine(ch, config.tlbs.l2.assoc);
    return id;
}

std::uint64_t
BenchContext::fingerprint() const
{
    return identity().fingerprint();
}

BenchContext
makeContext(int argc, char **argv, std::size_t default_suite_size,
            bool mpki_only)
{
    BenchContext ctx = makeContext(default_suite_size, mpki_only);
    ctx.benchName = benchBasename(argc > 0 ? argv[0] : nullptr);
    ctx.journalPath = defaultJournalPath(argc > 0 ? argv[0] : nullptr);
    bool no_journal = false;
    unsigned workers = 0;
    std::string coordinator_path;
    std::string worker_path;
    int worker_fd = -1;
    unsigned worker_id = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            ctx.jobs = parseJobs(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            ctx.jobs = parseJobs(arg.c_str() + std::strlen("--jobs="));
        } else if (arg == "--trace-cache") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a directory");
            ctx.traceCacheDir = argv[++i];
        } else if (arg.rfind("--trace-cache=", 0) == 0) {
            ctx.traceCacheDir =
                arg.substr(std::strlen("--trace-cache="));
        } else if (arg == "--no-trace-store") {
            ctx.shareTraces = false;
            ctx.traceCacheDir.clear();
        } else if (arg == "--trace-format" ||
                   arg.rfind("--trace-format=", 0) == 0) {
            std::string value;
            if (arg == "--trace-format") {
                if (i + 1 >= argc)
                    chirp_fatal(arg, " needs a format");
                value = argv[++i];
            } else {
                value = arg.substr(std::strlen("--trace-format="));
            }
            // Publish through the environment: traceFormat() reads it
            // at every decision point, and forked --workers inherit
            // it, so one flag pins the whole process tree to a tier.
            ::setenv("CHIRP_TRACE_FORMAT", value.c_str(), 1);
            traceFormat(); // validate now, not at first use
        } else if (arg == "--trace-in" ||
                   arg.rfind("--trace-in=", 0) == 0) {
            std::string value;
            if (arg == "--trace-in") {
                if (i + 1 >= argc)
                    chirp_fatal(arg, " needs a trace file path");
                value = argv[++i];
            } else {
                value = arg.substr(std::strlen("--trace-in="));
            }
            if (value.empty())
                chirp_fatal("--trace-in needs a non-empty path");
            // Accumulate into CHIRP_TRACE_IN (the flag is repeatable)
            // so forked --workers children rebuild the same suite.
            std::string list;
            if (const char *prior = std::getenv("CHIRP_TRACE_IN");
                prior && *prior) {
                list = prior;
                list += ',';
            }
            list += absolutePath(value);
            ::setenv("CHIRP_TRACE_IN", list.c_str(), 1);
        } else if (arg == "--trace-in-format" ||
                   arg.rfind("--trace-in-format=", 0) == 0) {
            std::string value;
            if (arg == "--trace-in-format") {
                if (i + 1 >= argc)
                    chirp_fatal(arg, " needs a format");
                value = argv[++i];
            } else {
                value = arg.substr(std::strlen("--trace-in-format="));
            }
            ::setenv("CHIRP_TRACE_IN_FORMAT", value.c_str(), 1);
            externalTraceFormatFromEnv(); // validate now
        } else if (arg == "--ingest-bad-budget" ||
                   arg.rfind("--ingest-bad-budget=", 0) == 0) {
            std::string value;
            if (arg == "--ingest-bad-budget") {
                if (i + 1 >= argc)
                    chirp_fatal(arg, " needs a value");
                value = argv[++i];
            } else {
                value = arg.substr(
                    std::strlen("--ingest-bad-budget="));
            }
            parseCount("--ingest-bad-budget", value.c_str());
            ::setenv("CHIRP_INGEST_BAD_BUDGET", value.c_str(), 1);
        } else if (arg == "--retries") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            ctx.resilience.retries = static_cast<unsigned>(
                parseCount("--retries", argv[++i]));
        } else if (arg.rfind("--retries=", 0) == 0) {
            ctx.resilience.retries = static_cast<unsigned>(parseCount(
                "--retries", arg.c_str() + std::strlen("--retries=")));
        } else if (arg == "--job-timeout") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            ctx.resilience.jobTimeoutMs =
                parseCount("--job-timeout", argv[++i]);
        } else if (arg.rfind("--job-timeout=", 0) == 0) {
            ctx.resilience.jobTimeoutMs = parseCount(
                "--job-timeout",
                arg.c_str() + std::strlen("--job-timeout="));
        } else if (arg == "--resume") {
            ctx.resume = true;
        } else if (arg == "--journal") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a path");
            ctx.journalPath = argv[++i];
        } else if (arg.rfind("--journal=", 0) == 0) {
            ctx.journalPath = arg.substr(std::strlen("--journal="));
        } else if (arg == "--no-journal") {
            no_journal = true;
        } else if (arg == "--workers") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            workers = static_cast<unsigned>(
                parseCount("--workers", argv[++i]));
        } else if (arg.rfind("--workers=", 0) == 0) {
            workers = static_cast<unsigned>(parseCount(
                "--workers", arg.c_str() + std::strlen("--workers=")));
        } else if (arg == "--coordinator") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a socket path");
            coordinator_path = argv[++i];
        } else if (arg.rfind("--coordinator=", 0) == 0) {
            coordinator_path =
                arg.substr(std::strlen("--coordinator="));
        } else if (arg == "--worker") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a socket path");
            worker_path = argv[++i];
        } else if (arg.rfind("--worker=", 0) == 0) {
            worker_path = arg.substr(std::strlen("--worker="));
        } else if (arg == "--worker-fd") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            worker_fd = static_cast<int>(
                parseCount("--worker-fd", argv[++i]));
        } else if (arg == "--worker-id") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            worker_id = static_cast<unsigned>(
                parseCount("--worker-id", argv[++i]));
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--jobs N] [--trace-cache DIR] "
                "[--no-trace-store]\n"
                "       [--trace-format legacy|columnar|mmap]\n"
                "       [--trace-in PATH]... "
                "[--trace-in-format auto|champsim|cvp]\n"
                "       [--ingest-bad-budget N]\n"
                "       [--retries N] [--job-timeout MS] [--resume]\n"
                "       [--journal PATH] [--no-journal] [--workers N]\n"
                "       [--coordinator PATH] [--worker PATH]\n"
                "  --jobs N, -j N     suite-runner worker threads\n"
                "                     (default: hardware concurrency or\n"
                "                     CHIRP_JOBS; 1 = serial)\n"
                "  --trace-cache DIR  persist materialized traces in DIR\n"
                "                     (default: CHIRP_TRACE_CACHE)\n"
                "  --no-trace-store   regenerate the trace for every\n"
                "                     policy (legacy path)\n"
                "  --trace-format F   trace tier: legacy (row-major\n"
                "                     reference), columnar (default)\n"
                "                     or mmap (zero-copy disk cache);\n"
                "                     sets CHIRP_TRACE_FORMAT so\n"
                "                     --workers children inherit it\n"
                "  --trace-in PATH    replace the synthetic suite with\n"
                "                     external trace files (repeatable;\n"
                "                     or CHIRP_TRACE_IN, comma-\n"
                "                     separated); malformed files fail\n"
                "                     their jobs, never the suite\n"
                "  --trace-in-format F  external container: auto\n"
                "                     (default), champsim or cvp; sets\n"
                "                     CHIRP_TRACE_IN_FORMAT\n"
                "  --ingest-bad-budget N  bad records tolerated per\n"
                "                     ingested file before its job\n"
                "                     fails (default 1024; sets\n"
                "                     CHIRP_INGEST_BAD_BUDGET)\n"
                "  --retries N        extra attempts for jobs failing\n"
                "                     transiently (default 1, or\n"
                "                     CHIRP_RETRIES)\n"
                "  --job-timeout MS   cancel jobs running longer than\n"
                "                     MS and record them as timed out\n"
                "                     (default off, or\n"
                "                     CHIRP_JOB_TIMEOUT_MS)\n"
                "  --resume           skip jobs already completed in the\n"
                "                     journal of an interrupted run\n"
                "  --journal PATH     journal location (default:\n"
                "                     <binary>.csv.journal)\n"
                "  --no-journal       disable job journaling\n"
                "  --workers N        fork N worker processes and shard\n"
                "                     multi-policy sweeps across them\n"
                "                     (crash-tolerant; CSVs stay\n"
                "                     byte-identical to a serial run)\n"
                "  --coordinator PATH also accept external workers on\n"
                "                     AF_UNIX socket PATH\n"
                "  --worker PATH      run as a worker attached to the\n"
                "                     coordinator at socket PATH\n"
                "Suite fidelity scales via CHIRP_SUITE_SIZE,\n"
                "CHIRP_TRACE_LEN and CHIRP_SEED; CHIRP_FAULT injects\n"
                "deterministic faults for resilience testing;\n"
                "CHIRP_DIST_* tunes the sweep fabric (see\n"
                "dist/fabric.hh).\n",
                argv[0]);
            std::exit(0);
        } else {
            chirp_fatal("unknown argument '", arg, "' (try --help)");
        }
    }
    if (no_journal)
        ctx.journalPath.clear();
    if (ctx.resume && ctx.journalPath.empty())
        chirp_fatal("--resume needs a journal (drop --no-journal)");
    // --trace-in may have extended CHIRP_TRACE_IN above; rebuild the
    // external suite now, before the coordinator derives the shard
    // ledger fingerprint from identity() below.
    applyExternalSuite(ctx);
    const bool is_worker = worker_fd >= 0 || !worker_path.empty();
    if (is_worker && (workers || !coordinator_path.empty()))
        chirp_fatal("a process is either a worker or a coordinator, "
                    "not both");
    if (worker_fd >= 0 && !worker_path.empty())
        chirp_fatal("--worker-fd and --worker are mutually exclusive");
    if (is_worker)
        enterWorkerMode(ctx, worker_fd, worker_id, worker_path);
    else if (workers || !coordinator_path.empty()) {
        enterCoordinatorMode(ctx, argc > 0 ? argv[0] : nullptr,
                             workers, coordinator_path);
    }
    return ctx;
}

int
finish(const BenchContext &ctx)
{
    const SuiteHealth &health = *ctx.health;
    if (health.resumedJobs() || health.retriedJobs() ||
        health.hungJobs() || health.timedOutJobs()) {
        chirp_inform("jobs: ", health.okJobs(), "/", health.totalJobs(),
                     " ok (", health.resumedJobs(), " resumed, ",
                     health.retriedJobs(), " retried, ",
                     health.hungJobs(), " hung, ",
                     health.timedOutJobs(), " timed out)");
    }
    if (ctx.fabric && ctx.fabric->isCoordinator()) {
        const dist::FabricStats fs = ctx.fabric->stats();
        chirp_inform("fabric: ", fs.remoteResults, " remote jobs from ",
                     fs.workersSpawned + fs.workersAttached,
                     " workers (", fs.workersLost, " lost, ",
                     fs.shardsRequeued, " shards requeued, ",
                     fs.shardsLocal, " run locally)");
    }
    // Satellite hygiene: one line accounting for every artifact the
    // run quarantined (.corrupt caches, .stale journals), so nothing
    // is moved aside silently.
    const std::string quarantined = quarantineSummaryLine();
    if (!quarantined.empty())
        chirp_inform(quarantined);
    const std::size_t failed = health.failureCount();
    if (failed == 0)
        return 0;
    chirp_warn(failed, " of ", health.totalJobs(),
               " jobs failed; results are incomplete",
               ctx.journal ? " (rerun with --resume to retry only "
                             "the failed jobs)"
                           : "");
    return 1;
}

void
printBanner(const std::string &title, const BenchContext &ctx)
{
    std::printf("== %s ==\n", title.c_str());
    if (!ctx.suite.empty() && !ctx.suite.front().tracePath.empty()) {
        std::printf("suite: %zu external trace file(s) (%s); "
                    "L2 TLB %u entries, %u-way; %u jobs\n\n",
                    ctx.suite.size(),
                    externalTraceFormatName(
                        externalTraceFormatFromEnv()),
                    ctx.config.tlbs.l2.entries,
                    ctx.config.tlbs.l2.assoc,
                    ctx.jobs ? ctx.jobs
                             : ThreadPool::defaultConcurrency());
        return;
    }
    std::printf("suite: %zu workloads x %llu instructions (seed %llu); "
                "L2 TLB %u entries, %u-way; %u jobs\n\n",
                ctx.suite.size(),
                static_cast<unsigned long long>(ctx.options.traceLength),
                static_cast<unsigned long long>(ctx.options.baseSeed),
                ctx.config.tlbs.l2.entries, ctx.config.tlbs.l2.assoc,
                ctx.jobs ? ctx.jobs : ThreadPool::defaultConcurrency());
}

std::map<PolicyKind, std::vector<WorkloadResult>>
runAllPolicies(const BenchContext &ctx)
{
    std::map<PolicyKind, std::vector<WorkloadResult>> results;
    const Runner runner = ctx.runner();
    if (!ctx.shareTraces) {
        // Legacy path: every policy regenerates every workload.
        for (const PolicyKind kind : allPolicyKinds()) {
            results[kind] =
                runner.runSuite(ctx.suite, Runner::factoryFor(kind),
                                policyKindName(kind));
        }
        return results;
    }
    std::vector<PolicyFactory> factories;
    std::vector<std::string> tags;
    for (const PolicyKind kind : allPolicyKinds()) {
        factories.push_back(Runner::factoryFor(kind));
        tags.push_back(policyKindName(kind));
    }
    auto all = runner.runSuiteMulti(ctx.suite, factories, "policies",
                                    {}, tags);
    std::size_t i = 0;
    for (const PolicyKind kind : allPolicyKinds())
        results[kind] = std::move(all[i++]);
    return results;
}

std::string
paperCell(double value)
{
    return TableFormatter::num(value, 2);
}

} // namespace chirp::bench
