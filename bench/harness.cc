#include "bench/harness.hh"

#include <cstdio>

namespace chirp::bench
{

BenchContext
makeContext(std::size_t default_suite_size, bool mpki_only)
{
    BenchContext ctx;
    ctx.options = suiteOptionsFromEnv(default_suite_size);
    ctx.suite = makeSuite(ctx.options);
    if (mpki_only) {
        ctx.config.simulateCaches = false;
        ctx.config.simulateBranch = false;
    }
    return ctx;
}

void
printBanner(const std::string &title, const BenchContext &ctx)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("suite: %zu workloads x %llu instructions (seed %llu); "
                "L2 TLB %u entries, %u-way\n\n",
                ctx.suite.size(),
                static_cast<unsigned long long>(ctx.options.traceLength),
                static_cast<unsigned long long>(ctx.options.baseSeed),
                ctx.config.tlbs.l2.entries, ctx.config.tlbs.l2.assoc);
}

std::map<PolicyKind, std::vector<WorkloadResult>>
runAllPolicies(const BenchContext &ctx)
{
    std::map<PolicyKind, std::vector<WorkloadResult>> results;
    const Runner runner = ctx.runner();
    for (const PolicyKind kind : allPolicyKinds()) {
        results[kind] = runner.runSuite(
            ctx.suite, Runner::factoryFor(kind), policyKindName(kind));
    }
    return results;
}

std::string
paperCell(double value)
{
    return TableFormatter::num(value, 2);
}

} // namespace chirp::bench
