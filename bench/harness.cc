#include "bench/harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/hashing.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace chirp::bench
{

namespace
{

unsigned
parseJobs(const char *text)
{
    char *end = nullptr;
    const unsigned long value = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0')
        chirp_fatal("--jobs expects a non-negative integer, got '", text,
                    "'");
    return static_cast<unsigned>(value);
}

std::uint64_t
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        chirp_fatal(flag, " expects a non-negative integer, got '",
                    text, "'");
    return value;
}

/** "<argv0 basename>.csv.journal" — the sidecar of the bench's CSV. */
std::string
defaultJournalPath(const char *argv0)
{
    std::string name = argv0 ? argv0 : "bench";
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name.erase(0, slash + 1);
    return name + ".csv.journal";
}

} // namespace

unsigned
jobsFromEnv()
{
    if (const char *env = std::getenv("CHIRP_JOBS"))
        return parseJobs(env);
    return ThreadPool::defaultConcurrency();
}

BenchContext
makeContext(std::size_t default_suite_size, bool mpki_only)
{
    BenchContext ctx;
    ctx.options = suiteOptionsFromEnv(default_suite_size);
    ctx.suite = makeSuite(ctx.options);
    ctx.jobs = jobsFromEnv();
    if (const char *env = std::getenv("CHIRP_TRACE_CACHE"); env && *env)
        ctx.traceCacheDir = env;
    if (mpki_only) {
        ctx.config.simulateCaches = false;
        ctx.config.simulateBranch = false;
    }
    if (const char *env = std::getenv("CHIRP_RETRIES"); env && *env) {
        ctx.resilience.retries = static_cast<unsigned>(
            parseCount("CHIRP_RETRIES", env));
    }
    if (const char *env = std::getenv("CHIRP_JOB_TIMEOUT_MS");
        env && *env) {
        ctx.resilience.jobTimeoutMs =
            parseCount("CHIRP_JOB_TIMEOUT_MS", env);
    }
    return ctx;
}

std::uint64_t
BenchContext::fingerprint() const
{
    std::uint64_t fp = mix64(0x43484952ull /* "CHIR" */);
    fp = hashCombine(fp, suite.size());
    fp = hashCombine(fp, options.traceLength);
    fp = hashCombine(fp, options.baseSeed);
    fp = hashCombine(fp, static_cast<std::uint64_t>(
                             options.onlyCategory + 1));
    fp = hashCombine(fp, config.simulateCaches ? 1 : 0);
    fp = hashCombine(fp, config.simulateBranch ? 1 : 0);
    fp = hashCombine(fp, config.tlbs.l2.entries);
    return hashCombine(fp, config.tlbs.l2.assoc);
}

BenchContext
makeContext(int argc, char **argv, std::size_t default_suite_size,
            bool mpki_only)
{
    BenchContext ctx = makeContext(default_suite_size, mpki_only);
    ctx.journalPath = defaultJournalPath(argc > 0 ? argv[0] : nullptr);
    bool no_journal = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            ctx.jobs = parseJobs(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            ctx.jobs = parseJobs(arg.c_str() + std::strlen("--jobs="));
        } else if (arg == "--trace-cache") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a directory");
            ctx.traceCacheDir = argv[++i];
        } else if (arg.rfind("--trace-cache=", 0) == 0) {
            ctx.traceCacheDir =
                arg.substr(std::strlen("--trace-cache="));
        } else if (arg == "--no-trace-store") {
            ctx.shareTraces = false;
            ctx.traceCacheDir.clear();
        } else if (arg == "--retries") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            ctx.resilience.retries = static_cast<unsigned>(
                parseCount("--retries", argv[++i]));
        } else if (arg.rfind("--retries=", 0) == 0) {
            ctx.resilience.retries = static_cast<unsigned>(parseCount(
                "--retries", arg.c_str() + std::strlen("--retries=")));
        } else if (arg == "--job-timeout") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            ctx.resilience.jobTimeoutMs =
                parseCount("--job-timeout", argv[++i]);
        } else if (arg.rfind("--job-timeout=", 0) == 0) {
            ctx.resilience.jobTimeoutMs = parseCount(
                "--job-timeout",
                arg.c_str() + std::strlen("--job-timeout="));
        } else if (arg == "--resume") {
            ctx.resume = true;
        } else if (arg == "--journal") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a path");
            ctx.journalPath = argv[++i];
        } else if (arg.rfind("--journal=", 0) == 0) {
            ctx.journalPath = arg.substr(std::strlen("--journal="));
        } else if (arg == "--no-journal") {
            no_journal = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--jobs N] [--trace-cache DIR] "
                "[--no-trace-store]\n"
                "       [--retries N] [--job-timeout MS] [--resume]\n"
                "       [--journal PATH] [--no-journal]\n"
                "  --jobs N, -j N     suite-runner worker threads\n"
                "                     (default: hardware concurrency or\n"
                "                     CHIRP_JOBS; 1 = serial)\n"
                "  --trace-cache DIR  persist materialized traces in DIR\n"
                "                     (default: CHIRP_TRACE_CACHE)\n"
                "  --no-trace-store   regenerate the trace for every\n"
                "                     policy (legacy path)\n"
                "  --retries N        extra attempts for jobs failing\n"
                "                     transiently (default 1, or\n"
                "                     CHIRP_RETRIES)\n"
                "  --job-timeout MS   flag jobs running longer than MS\n"
                "                     as hung (default off, or\n"
                "                     CHIRP_JOB_TIMEOUT_MS)\n"
                "  --resume           skip jobs already completed in the\n"
                "                     journal of an interrupted run\n"
                "  --journal PATH     journal location (default:\n"
                "                     <binary>.csv.journal)\n"
                "  --no-journal       disable job journaling\n"
                "Suite fidelity scales via CHIRP_SUITE_SIZE,\n"
                "CHIRP_TRACE_LEN and CHIRP_SEED; CHIRP_FAULT injects\n"
                "deterministic faults for resilience testing.\n",
                argv[0]);
            std::exit(0);
        } else {
            chirp_fatal("unknown argument '", arg, "' (try --help)");
        }
    }
    if (no_journal)
        ctx.journalPath.clear();
    if (ctx.resume && ctx.journalPath.empty())
        chirp_fatal("--resume needs a journal (drop --no-journal)");
    return ctx;
}

int
finish(const BenchContext &ctx)
{
    const SuiteHealth &health = *ctx.health;
    if (health.resumedJobs() || health.retriedJobs() ||
        health.hungJobs()) {
        chirp_inform("jobs: ", health.okJobs(), "/", health.totalJobs(),
                     " ok (", health.resumedJobs(), " resumed, ",
                     health.retriedJobs(), " retried, ",
                     health.hungJobs(), " hung)");
    }
    const std::size_t failed = health.failureCount();
    if (failed == 0)
        return 0;
    chirp_warn(failed, " of ", health.totalJobs(),
               " jobs failed; results are incomplete",
               ctx.journal ? " (rerun with --resume to retry only "
                             "the failed jobs)"
                           : "");
    return 1;
}

void
printBanner(const std::string &title, const BenchContext &ctx)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("suite: %zu workloads x %llu instructions (seed %llu); "
                "L2 TLB %u entries, %u-way; %u jobs\n\n",
                ctx.suite.size(),
                static_cast<unsigned long long>(ctx.options.traceLength),
                static_cast<unsigned long long>(ctx.options.baseSeed),
                ctx.config.tlbs.l2.entries, ctx.config.tlbs.l2.assoc,
                ctx.jobs ? ctx.jobs : ThreadPool::defaultConcurrency());
}

std::map<PolicyKind, std::vector<WorkloadResult>>
runAllPolicies(const BenchContext &ctx)
{
    std::map<PolicyKind, std::vector<WorkloadResult>> results;
    const Runner runner = ctx.runner();
    if (!ctx.shareTraces) {
        // Legacy path: every policy regenerates every workload.
        for (const PolicyKind kind : allPolicyKinds()) {
            results[kind] =
                runner.runSuite(ctx.suite, Runner::factoryFor(kind),
                                policyKindName(kind));
        }
        return results;
    }
    std::vector<PolicyFactory> factories;
    std::vector<std::string> tags;
    for (const PolicyKind kind : allPolicyKinds()) {
        factories.push_back(Runner::factoryFor(kind));
        tags.push_back(policyKindName(kind));
    }
    auto all = runner.runSuiteMulti(ctx.suite, factories, "policies",
                                    {}, tags);
    std::size_t i = 0;
    for (const PolicyKind kind : allPolicyKinds())
        results[kind] = std::move(all[i++]);
    return results;
}

std::string
paperCell(double value)
{
    return TableFormatter::num(value, 2);
}

} // namespace chirp::bench
