#include "bench/harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace chirp::bench
{

namespace
{

unsigned
parseJobs(const char *text)
{
    char *end = nullptr;
    const unsigned long value = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0')
        chirp_fatal("--jobs expects a non-negative integer, got '", text,
                    "'");
    return static_cast<unsigned>(value);
}

} // namespace

unsigned
jobsFromEnv()
{
    if (const char *env = std::getenv("CHIRP_JOBS"))
        return parseJobs(env);
    return ThreadPool::defaultConcurrency();
}

BenchContext
makeContext(std::size_t default_suite_size, bool mpki_only)
{
    BenchContext ctx;
    ctx.options = suiteOptionsFromEnv(default_suite_size);
    ctx.suite = makeSuite(ctx.options);
    ctx.jobs = jobsFromEnv();
    if (const char *env = std::getenv("CHIRP_TRACE_CACHE"); env && *env)
        ctx.traceCacheDir = env;
    if (mpki_only) {
        ctx.config.simulateCaches = false;
        ctx.config.simulateBranch = false;
    }
    return ctx;
}

BenchContext
makeContext(int argc, char **argv, std::size_t default_suite_size,
            bool mpki_only)
{
    BenchContext ctx = makeContext(default_suite_size, mpki_only);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            ctx.jobs = parseJobs(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            ctx.jobs = parseJobs(arg.c_str() + std::strlen("--jobs="));
        } else if (arg == "--trace-cache") {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a directory");
            ctx.traceCacheDir = argv[++i];
        } else if (arg.rfind("--trace-cache=", 0) == 0) {
            ctx.traceCacheDir =
                arg.substr(std::strlen("--trace-cache="));
        } else if (arg == "--no-trace-store") {
            ctx.shareTraces = false;
            ctx.traceCacheDir.clear();
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--jobs N] [--trace-cache DIR] "
                "[--no-trace-store]\n"
                "  --jobs N, -j N     suite-runner worker threads\n"
                "                     (default: hardware concurrency or\n"
                "                     CHIRP_JOBS; 1 = serial)\n"
                "  --trace-cache DIR  persist materialized traces in DIR\n"
                "                     (default: CHIRP_TRACE_CACHE)\n"
                "  --no-trace-store   regenerate the trace for every\n"
                "                     policy (legacy path)\n"
                "Suite fidelity scales via CHIRP_SUITE_SIZE,\n"
                "CHIRP_TRACE_LEN and CHIRP_SEED.\n",
                argv[0]);
            std::exit(0);
        } else {
            chirp_fatal("unknown argument '", arg, "' (try --help)");
        }
    }
    return ctx;
}

void
printBanner(const std::string &title, const BenchContext &ctx)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("suite: %zu workloads x %llu instructions (seed %llu); "
                "L2 TLB %u entries, %u-way; %u jobs\n\n",
                ctx.suite.size(),
                static_cast<unsigned long long>(ctx.options.traceLength),
                static_cast<unsigned long long>(ctx.options.baseSeed),
                ctx.config.tlbs.l2.entries, ctx.config.tlbs.l2.assoc,
                ctx.jobs ? ctx.jobs : ThreadPool::defaultConcurrency());
}

std::map<PolicyKind, std::vector<WorkloadResult>>
runAllPolicies(const BenchContext &ctx)
{
    std::map<PolicyKind, std::vector<WorkloadResult>> results;
    const Runner runner = ctx.runner();
    if (!ctx.shareTraces) {
        // Legacy path: every policy regenerates every workload.
        for (const PolicyKind kind : allPolicyKinds()) {
            results[kind] =
                runner.runSuite(ctx.suite, Runner::factoryFor(kind),
                                policyKindName(kind));
        }
        return results;
    }
    std::vector<PolicyFactory> factories;
    for (const PolicyKind kind : allPolicyKinds())
        factories.push_back(Runner::factoryFor(kind));
    auto all = runner.runSuiteMulti(ctx.suite, factories, "policies");
    std::size_t i = 0;
    for (const PolicyKind kind : allPolicyKinds())
        results[kind] = std::move(all[i++]);
    return results;
}

std::string
paperCell(double value)
{
    return TableFormatter::num(value, 2);
}

} // namespace chirp::bench
