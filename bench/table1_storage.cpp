/**
 * @file
 * Table I reproduction: CHiRP storage overhead for a 1024-entry,
 * 8-way L2 TLB, for the paper's two prediction-table budgets, plus
 * the per-policy storage comparison backing §VI-H (CHiRP uses one
 * table where GHRP needs three).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/history.hh"

using namespace chirp;
using namespace chirp::bench;

namespace
{

std::string
kb(std::uint64_t bits)
{
    return TableFormatter::num(
        static_cast<double>(bits) / 8.0 / 1024.0, 3);
}

} // namespace

int
main()
{
    std::printf("== Table I: CHiRP storage overhead (1024-entry 8-way "
                "L2 TLB) ==\n\n");

    for (const std::size_t table_bytes : {128ull, 1024ull, 8192ull}) {
        ChirpConfig config;
        config.tableEntries = table_bytes * 8 / config.counterBits;
        ChirpPolicy policy(128, 8, config);

        TableFormatter table;
        table.header({"component", "size"});
        table.row({"prediction bits", "1 bit x 1024 = 128B"});
        table.row({"first-hit bits", "1 bit x 1024 = 128B (see "
                   "EXPERIMENTS.md)"});
        table.row({"signature bits", "16 bits x 1024 = 2KB"});
        table.row({"LRU stack bits", "3 bits x 1024 = 384B"});
        table.row({"path history register", "64 bit x 1 = 8B"});
        table.row({"cond. history register", "64 bit x 1 = 8B"});
        table.row({"uncond. history register", "64 bit x 1 = 8B"});
        table.row({"counters",
                   std::to_string(config.tableEntries) + " x 2b = " +
                       std::to_string(table_bytes) + "B"});
        table.row({"total (measured)", kb(policy.storageBits()) + "KB"});
        std::printf("prediction table budget: %lluB\n",
                    static_cast<unsigned long long>(table_bytes));
        table.print();
        std::printf("\n");
    }
    std::printf("paper Table I totals: 2.65KB (128B counters) and "
                "8.14KB (8KB counters); the delta is our explicit "
                "first-hit bit and LRU accounting.\n\n");

    std::printf("per-policy storage at default configurations "
                "(1024-entry 8-way TLB):\n");
    TableFormatter policies;
    policies.header({"policy", "metadata + tables (KB)"});
    CsvWriter csv("table1_storage.csv");
    csv.row({"policy", "storage_kb"});
    for (const PolicyKind kind : allPolicyKinds()) {
        const auto policy = makePolicy(kind, 128, 8);
        policies.row({policyKindName(kind),
                      kb(policy->storageBits())});
        csv.row({policyKindName(kind), kb(policy->storageBits())});
    }
    policies.print();
    std::printf("\nCHiRP's single table vs GHRP's three is the §VI-H "
                "overhead argument.\nCSV written to table1_storage.csv\n");
    return 0;
}
