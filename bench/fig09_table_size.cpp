/**
 * @file
 * Fig 9 reproduction: CHiRP MPKI improvement over LRU as the
 * prediction-table budget sweeps 128B..8KB (2-bit counters, so
 * 512..32768 entries).
 *
 * Paper: ~7% at 128B, ~20% at 256B, ~22% at 512B, ~28% at 1KB/2KB,
 * gently rising beyond.  The paper's headline configuration is the
 * 1KB table.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace chirp;
using namespace chirp::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 48, /*mpki_only=*/true);
    printBanner("Fig 9: CHiRP MPKI improvement vs prediction-table size",
                ctx);

    const Runner runner = ctx.runner();
    const auto lru = runner.runSuite(
        ctx.suite, Runner::factoryFor(PolicyKind::Lru), "lru");

    const struct
    {
        std::size_t bytes;
        double paper;
    } points[] = {
        {128, 7.0},  {256, 20.0},  {512, 22.0},  {1024, 28.0},
        {2048, 28.0}, {4096, 29.0}, {8192, 30.0},
    };

    TableFormatter table;
    table.header({"table size", "counters", "MPKI improvement % "
                  "(measured)", "paper %"});
    CsvWriter csv("fig09_table_size.csv");
    csv.row({"table_bytes", "counters", "improvement_pct_measured",
             "improvement_pct_paper"});

    for (const auto &point : points) {
        ChirpConfig config;
        config.tableEntries = point.bytes * 8 / config.counterBits;
        const auto results = runner.runSuite(
            ctx.suite,
            [&](std::uint32_t sets, std::uint32_t assoc) {
                return makeChirp(sets, assoc, config);
            },
            std::to_string(point.bytes) + "B");
        const double improvement = mpkiReductionPct(lru, results);
        const std::string label =
            point.bytes >= 1024
                ? std::to_string(point.bytes / 1024) + "KB"
                : std::to_string(point.bytes) + "B";
        table.row({label,
                   TableFormatter::num(std::uint64_t{
                       config.tableEntries}),
                   TableFormatter::num(improvement, 2),
                   TableFormatter::num(point.paper, 1)});
        csv.row({std::to_string(point.bytes),
                 std::to_string(config.tableEntries),
                 TableFormatter::num(improvement, 3),
                 TableFormatter::num(point.paper, 1)});
    }
    table.print();
    std::printf("\nCSV written to fig09_table_size.csv\n");
    return finish(ctx);
}
