/**
 * @file
 * Extra bench: the paper's policy set plus the library's extension
 * policies (DRRIP set dueling, tree-PLRU) on one suite.
 *
 * Answers two questions the paper leaves open: does a stronger RRIP
 * (dynamic insertion) close the gap to CHiRP, and how much of the
 * LRU baseline's behaviour survives in the pseudo-LRU hardware
 * actually shipped?
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace chirp;
using namespace chirp::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 48, /*mpki_only=*/true);
    printBanner("Extension study: DRRIP and tree-PLRU vs the paper's "
                "policies", ctx);

    const Runner runner = ctx.runner();
    const auto lru = runner.runSuite(
        ctx.suite, Runner::factoryFor(PolicyKind::Lru), "lru");

    TableFormatter table;
    table.header({"policy", "avg MPKI", "MPKI reduction %"});
    CsvWriter csv("extra_policies.csv");
    csv.row({"policy", "avg_mpki", "reduction_pct"});
    table.row({"lru", TableFormatter::num(averageMpki(lru), 3), "0.00"});
    csv.row({"lru", TableFormatter::num(averageMpki(lru), 4), "0"});

    std::vector<std::string> names = {"plru", "srrip", "drrip", "ship",
                                      "ghrp", "chirp"};
    for (const std::string &name : names) {
        const auto results = runner.runSuite(
            ctx.suite,
            [&](std::uint32_t sets, std::uint32_t assoc) {
                return makePolicy(name, sets, assoc);
            },
            name);
        table.row({name, TableFormatter::num(averageMpki(results), 3),
                   TableFormatter::num(mpkiReductionPct(lru, results),
                                       2)});
        csv.row({name, TableFormatter::num(averageMpki(results), 4),
                 TableFormatter::num(mpkiReductionPct(lru, results), 3)});
    }
    table.print();
    std::printf("\nCSV written to extra_policies.csv\n");
    return finish(ctx);
}
