/**
 * @file
 * Fig 2 reproduction: speedup as a function of global PC (path)
 * history length, with and without the branch histories.
 *
 * Paper shape: PC-history-only speedup stops improving beyond a
 * length of ~15; folding the branch path histories into the
 * signature lets CHiRP exploit effective history lengths beyond 30.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace chirp;
using namespace chirp::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 18, /*mpki_only=*/false);
    printBanner("Fig 2: speedup vs global path-history length", ctx);

    const Runner runner = ctx.runner();
    const auto lru = runner.runSuite(
        ctx.suite, Runner::factoryFor(PolicyKind::Lru), "lru");

    TableFormatter table;
    table.header({"path length", "PC-history only (speedup %)",
                  "+ branch histories (speedup %)"});
    CsvWriter csv("fig02_history_length.csv");
    csv.row({"path_events", "speedup_pct_pc_only",
             "speedup_pct_with_branch"});

    for (const unsigned length : {4u, 8u, 12u, 16u, 24u, 32u, 40u}) {
        double speedups[2] = {0.0, 0.0};
        for (const bool with_branch : {false, true}) {
            ChirpConfig config;
            config.history.pathEvents = length;
            config.history.useCondHist = with_branch;
            config.history.useUncondHist = with_branch;
            char label[48];
            std::snprintf(label, sizeof(label), "len%u%s", length,
                          with_branch ? "+br" : "");
            const auto results = runner.runSuite(
                ctx.suite,
                [&](std::uint32_t sets, std::uint32_t assoc) {
                    return makeChirp(sets, assoc, config);
                },
                label);
            speedups[with_branch ? 1 : 0] =
                speedupPct(lru, results, ctx.config.pageWalkLatency);
        }
        table.row({TableFormatter::num(std::uint64_t{length}),
                   TableFormatter::num(speedups[0], 2),
                   TableFormatter::num(speedups[1], 2)});
        csv.row({std::to_string(length),
                 TableFormatter::num(speedups[0], 3),
                 TableFormatter::num(speedups[1], 3)});
    }
    table.print();
    std::printf("\npaper shape: the PC-only curve saturates near "
                "length 15; the combined curve keeps rising past 30.\n");
    std::printf("CSV written to fig02_history_length.csv\n");
    return finish(ctx);
}
