/**
 * @file
 * Fig 10 reproduction: average speedup over LRU as the L2 TLB miss
 * penalty sweeps from 20 to 340 cycles.
 *
 * TLB behaviour is independent of the penalty, so each policy is
 * simulated once and IPC is re-derived per penalty
 * (SimStats::ipcAtPenalty); the simulator_test suite verifies the
 * re-derivation is exact.
 *
 * Paper shape: all predictive policies grow with the penalty; CHiRP
 * dominates throughout and exceeds 10% by 320 cycles.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace chirp;
using namespace chirp::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 48, /*mpki_only=*/false);
    printBanner("Fig 10: speedup over LRU vs miss penalty (20-340 cyc)",
                ctx);

    const auto results = runAllPolicies(ctx);
    const auto &lru = results.at(PolicyKind::Lru);

    TableFormatter table;
    {
        std::vector<std::string> header = {"penalty"};
        for (const PolicyKind kind : allPolicyKinds()) {
            if (kind != PolicyKind::Lru)
                header.push_back(policyKindName(kind));
        }
        table.header(header);
    }
    CsvWriter csv("fig10_penalty_sweep.csv");
    {
        std::vector<std::string> header = {"penalty_cycles"};
        for (const PolicyKind kind : allPolicyKinds()) {
            if (kind != PolicyKind::Lru)
                header.push_back(std::string(policyKindName(kind)) +
                                 "_speedup_pct");
        }
        csv.row(header);
    }

    for (Cycles penalty = 20; penalty <= 340; penalty += 30) {
        std::vector<std::string> row = {
            TableFormatter::num(std::uint64_t{penalty})};
        for (const PolicyKind kind : allPolicyKinds()) {
            if (kind == PolicyKind::Lru)
                continue;
            row.push_back(TableFormatter::num(
                speedupPct(lru, results.at(kind), penalty), 2));
        }
        table.row(row);
        csv.row(row);
    }
    std::printf("geomean speedup %% over LRU:\n");
    table.print();
    std::printf("\npaper reference: CHiRP 4.8%% at 150 cycles, >10%% at "
                "320 cycles; other policies stay low.\n");
    std::printf("CSV written to fig10_penalty_sweep.csv\n");
    return finish(ctx);
}
