/**
 * @file
 * Fig 3 reproduction: offline-ADALINE importance of each PC bit for
 * predicting L2 TLB entry reuse, one row per workload.
 *
 * Paper: the white (high-weight) columns sit at PC bits 2 and 3 —
 * the slice CHiRP shifts into its path history.
 */

#include <cstdio>
#include <map>

#include "bench/harness.hh"
#include "learn/adaline.hh"
#include "learn/reuse_dataset.hh"

using namespace chirp;
using namespace chirp::bench;

namespace
{

constexpr std::size_t kPcBits = 20;

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 24, /*mpki_only=*/true);
    printBanner("Fig 3: ADALINE weight per PC bit (reuse prediction)",
                ctx);

    CsvWriter csv("fig03_adaline_weights.csv");
    {
        std::vector<std::string> header = {"workload"};
        for (std::size_t bit = 0; bit < kPcBits; ++bit)
            header.push_back("bit" + std::to_string(bit));
        csv.row(header);
    }

    std::vector<double> column_sum(kPcBits, 0.0);
    std::size_t rows = 0;
    for (std::size_t i = 0; i < ctx.suite.size(); ++i) {
        std::fprintf(stderr, "\r  [adaline] %zu/%zu", i + 1,
                     ctx.suite.size());
        std::fflush(stderr);
        const auto program = buildWorkload(ctx.suite[i]);
        const auto samples = collectReuseSamples(*program);
        if (samples.size() < 200)
            continue;

        AdalineConfig config;
        config.inputs = kPcBits;
        Adaline model(config);
        // Two passes over the dataset, as an offline study would.
        for (int pass = 0; pass < 2; ++pass) {
            for (const auto &sample : samples) {
                model.train(pcBitsToInputs(sample.fillPc, kPcBits),
                            sample.reused ? 1.0 : -1.0);
            }
        }
        const auto importance = model.normalizedImportance();
        std::vector<std::string> row = {ctx.suite[i].name};
        for (std::size_t bit = 0; bit < kPcBits; ++bit) {
            row.push_back(TableFormatter::num(importance[bit], 4));
            column_sum[bit] += importance[bit];
        }
        csv.row(row);
        ++rows;
    }
    std::fprintf(stderr, "\n");

    TableFormatter table;
    table.header({"PC bit", "mean importance", "bar"});
    std::size_t best_bit = 0;
    for (std::size_t bit = 0; bit < kPcBits; ++bit) {
        const double mean_importance =
            rows ? column_sum[bit] / static_cast<double>(rows) : 0.0;
        if (mean_importance > column_sum[best_bit] / (rows ? rows : 1))
            best_bit = bit;
        std::string bar(
            static_cast<std::size_t>(mean_importance * 40.0), '#');
        table.row({TableFormatter::num(std::uint64_t{bit}),
                   TableFormatter::num(mean_importance, 3), bar});
    }
    table.print();
    std::printf("\npaper: bits 2 and 3 carry the strongest reuse "
                "correlation (instruction-slot identity inside a "
                "16-byte group).\n");
    std::printf("CSV written to fig03_adaline_weights.csv\n");
    return finish(ctx);
}
