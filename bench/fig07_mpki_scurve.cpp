/**
 * @file
 * Fig 7 reproduction: MPKI comparison of all six policies over the
 * suite, sorted by LRU MPKI (the paper's S-curve), plus the average
 * MPKI / reduction summary the paper quotes.
 *
 * Paper averages over 870 traces: LRU 1.51, Random 1.47, SRRIP 1.35
 * (+10.36%), SHiP 1.50 (+0.88%), GHRP 1.37 (+9.03%), CHiRP 1.08
 * (+28.21%).
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench/harness.hh"

using namespace chirp;
using namespace chirp::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 96, /*mpki_only=*/true);
    printBanner("Fig 7: per-policy MPKI S-curve and averages", ctx);

    const auto results = runAllPolicies(ctx);
    const auto &lru = results.at(PolicyKind::Lru);

    // S-curve: workloads ordered by LRU MPKI.
    std::vector<std::size_t> order(ctx.suite.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return lru[a].stats.mpki() < lru[b].stats.mpki();
              });

    CsvWriter csv("fig07_mpki_scurve.csv");
    {
        std::vector<std::string> header = {"rank", "workload"};
        for (const PolicyKind kind : allPolicyKinds())
            header.push_back(std::string(policyKindName(kind)) +
                             "_mpki");
        csv.row(header);
    }
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const std::size_t i = order[rank];
        std::vector<std::string> row = {
            TableFormatter::num(std::uint64_t{rank}),
            ctx.suite[i].name};
        for (const PolicyKind kind : allPolicyKinds())
            row.push_back(TableFormatter::num(
                results.at(kind)[i].stats.mpki(), 4));
        csv.row(row);
    }

    // Console: decile summary of the S-curve.
    TableFormatter curve;
    {
        std::vector<std::string> header = {"percentile"};
        for (const PolicyKind kind : allPolicyKinds())
            header.push_back(policyKindName(kind));
        curve.header(header);
    }
    for (const double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
        std::vector<std::string> row = {TableFormatter::num(pct, 0)};
        const std::size_t upto = std::min<std::size_t>(
            order.size(),
            static_cast<std::size_t>(pct / 100.0 * order.size()));
        const std::size_t i = order[upto == 0 ? 0 : upto - 1];
        for (const PolicyKind kind : allPolicyKinds())
            row.push_back(TableFormatter::num(
                results.at(kind)[i].stats.mpki(), 3));
        curve.row(row);
    }
    std::printf("MPKI at LRU-sorted percentiles (S-curve samples):\n");
    curve.print();

    // Headline averages, paper vs measured.
    const struct
    {
        PolicyKind kind;
        double paper_mpki;
        double paper_reduction;
    } reference[] = {
        {PolicyKind::Lru, 1.51, 0.0},    {PolicyKind::Random, 1.47, 2.6},
        {PolicyKind::Srrip, 1.35, 10.36}, {PolicyKind::Ship, 1.50, 0.88},
        {PolicyKind::Ghrp, 1.37, 9.03},  {PolicyKind::Chirp, 1.08, 28.21},
    };
    TableFormatter summary;
    summary.header({"policy", "avg MPKI", "reduction % (measured)",
                    "paper MPKI", "reduction % (paper)"});
    for (const auto &ref : reference) {
        const auto &res = results.at(ref.kind);
        summary.row({policyKindName(ref.kind),
                     TableFormatter::num(averageMpki(res), 3),
                     TableFormatter::num(mpkiReductionPct(lru, res), 2),
                     TableFormatter::num(ref.paper_mpki, 2),
                     TableFormatter::num(ref.paper_reduction, 2)});
    }
    std::printf("\naverages over the suite (paper: 870 CVP-1 traces; "
                "absolute MPKI differs by design — see EXPERIMENTS.md):\n");
    summary.print();
    std::printf("\nCSV written to fig07_mpki_scurve.csv\n");
    return finish(ctx);
}
