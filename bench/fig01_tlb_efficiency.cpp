/**
 * @file
 * Fig 1 reproduction: TLB-efficiency heat map — the live-time
 * fraction of L2 TLB entries per (workload x policy), scaled by LRU
 * — plus the average-gain summary the paper quotes.
 *
 * Paper average efficiency gains over LRU: CHiRP +8.07%, Random
 * +3.10%, GHRP +2.92%, SRRIP +2.84%, SHiP +1.85%.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench/harness.hh"

using namespace chirp;
using namespace chirp::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 60, /*mpki_only=*/true);
    printBanner("Fig 1: L2 TLB efficiency (live-time fraction) heat map",
                ctx);

    const auto results = runAllPolicies(ctx);
    const auto &lru = results.at(PolicyKind::Lru);

    // CSV heat map: one row per workload (sorted by LRU efficiency,
    // as in the paper), one column per policy, values scaled by LRU.
    std::vector<std::size_t> order(ctx.suite.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return lru[a].stats.l2Efficiency <
                         lru[b].stats.l2Efficiency;
              });

    CsvWriter csv("fig01_tlb_efficiency.csv");
    {
        std::vector<std::string> header = {"workload",
                                           "lru_efficiency"};
        for (const PolicyKind kind : allPolicyKinds()) {
            if (kind != PolicyKind::Lru)
                header.push_back(std::string(policyKindName(kind)) +
                                 "_vs_lru");
        }
        csv.row(header);
    }
    for (const std::size_t i : order) {
        const double base = lru[i].stats.l2Efficiency;
        std::vector<std::string> row = {
            ctx.suite[i].name, TableFormatter::num(base, 4)};
        for (const PolicyKind kind : allPolicyKinds()) {
            if (kind == PolicyKind::Lru)
                continue;
            const double eff = results.at(kind)[i].stats.l2Efficiency;
            row.push_back(TableFormatter::num(
                base > 0.0 ? eff / base : 0.0, 4));
        }
        csv.row(row);
    }

    const struct
    {
        PolicyKind kind;
        double paper;
    } reference[] = {
        {PolicyKind::Random, 3.10}, {PolicyKind::Srrip, 2.84},
        {PolicyKind::Ship, 1.85},   {PolicyKind::Ghrp, 2.92},
        {PolicyKind::Chirp, 8.07},
    };
    TableFormatter summary;
    summary.header({"policy", "mean efficiency gain % (measured)",
                    "paper %"});
    for (const auto &ref : reference) {
        summary.row({policyKindName(ref.kind),
                     TableFormatter::num(
                         efficiencyGainPct(lru, results.at(ref.kind)),
                         2),
                     TableFormatter::num(ref.paper, 2)});
    }
    summary.print();
    std::printf("\nheat-map rows (workload x policy, scaled by LRU) "
                "written to fig01_tlb_efficiency.csv\n");
    return finish(ctx);
}
