/**
 * @file
 * Extra bench: mixed 4KB/2MB page sizes — the paper's named future
 * work (§V, §VIII).
 *
 * Each workload's large allocations (>= 512 pages) are backed by 2MB
 * superpages with probability `fraction`, modeling an OS whose
 * hugepage allocator succeeds only part of the time (fragmentation).
 * We report L2 TLB MPKI under LRU and CHiRP per backing fraction:
 * superpages collapse stream misses by up to 512x, shrinking the
 * pool of avoidable misses and with it the margin any replacement
 * policy can offer — the paper's argument for why 4KB replacement
 * remains worth solving.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "sim/simulator.hh"
#include "tlb/page_map.hh"
#include "util/random.hh"

using namespace chirp;
using namespace chirp::bench;

namespace
{

/** Back a fraction of the workload's big regions with superpages. */
PageMap
buildMap(const Program &program, double fraction, std::uint64_t seed)
{
    PageMap map;
    Rng rng(mix64(seed ^ 0x9a9e5));
    for (const auto &alloc : program.dataLayout().allocations()) {
        if (alloc.npages < 512)
            continue; // small structures stay on base pages
        if (rng.chance(fraction))
            map.mapHuge(alloc.base, alloc.npages * kPageSize);
    }
    return map;
}

double
runSuite(const BenchContext &ctx, PolicyKind kind, double fraction)
{
    double mpki_sum = 0.0;
    for (std::size_t i = 0; i < ctx.suite.size(); ++i) {
        auto program = buildWorkload(ctx.suite[i]);
        const PageMap map =
            buildMap(*program, fraction, ctx.suite[i].seed);
        const std::uint32_t sets =
            ctx.config.tlbs.l2.entries / ctx.config.tlbs.l2.assoc;
        Simulator sim(ctx.config,
                      makePolicy(kind, sets, ctx.config.tlbs.l2.assoc));
        sim.tlbs().setPageMap(&map);
        mpki_sum += sim.run(*program).mpki();
        std::fprintf(stderr, "\r  [%s f=%.2f] %zu/%zu",
                     policyKindName(kind), fraction, i + 1,
                     ctx.suite.size());
    }
    std::fprintf(stderr, "\n");
    return mpki_sum / static_cast<double>(ctx.suite.size());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 24, /*mpki_only=*/true);
    printBanner("Extension study: mixed 4KB/2MB pages (the paper's "
                "future work)", ctx);

    TableFormatter table;
    table.header({"hugepage backing", "lru MPKI", "chirp MPKI",
                  "chirp reduction %"});
    CsvWriter csv("mixed_page_study.csv");
    csv.row({"huge_fraction", "lru_mpki", "chirp_mpki",
             "chirp_reduction_pct"});

    for (const double fraction : {0.0, 0.5, 1.0}) {
        const double lru = runSuite(ctx, PolicyKind::Lru, fraction);
        const double chirp_mpki =
            runSuite(ctx, PolicyKind::Chirp, fraction);
        const double reduction =
            lru > 0.0 ? (1.0 - chirp_mpki / lru) * 100.0 : 0.0;
        table.row({TableFormatter::num(fraction * 100.0, 0) + "%",
                   TableFormatter::num(lru, 3),
                   TableFormatter::num(chirp_mpki, 3),
                   TableFormatter::num(reduction, 2)});
        csv.row({TableFormatter::num(fraction, 2),
                 TableFormatter::num(lru, 4),
                 TableFormatter::num(chirp_mpki, 4),
                 TableFormatter::num(reduction, 3)});
    }
    table.print();
    std::printf("\nsuperpages shrink both the miss pool and the "
                "replacement-policy margin;\nworkloads that cannot use "
                "them (the paper's motivation) keep the full gap.\n");
    std::printf("CSV written to mixed_page_study.csv\n");
    return finish(ctx);
}
