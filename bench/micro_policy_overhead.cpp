/**
 * @file
 * Microbenchmark (google-benchmark): simulation cost per L2 TLB
 * access for each replacement policy, plus the cost of CHiRP's
 * history updates.
 *
 * This backs the §VI-B/§VI-E discussion: CHiRP's selective updates
 * keep its per-access work (and hence the modeled energy) close to
 * LRU's, unlike per-access predictors.  Absolute numbers are host
 * timings of the simulator, not hardware latencies.
 *
 * Besides the usual console table, writes BENCH_policy_overhead.json
 * (ns/access per policy, stable schema) so CI can archive the perf
 * trajectory of the policy hot paths and soft-gate regressions
 * against the committed baseline.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/chirp.hh"
#include "core/ghrp.hh"
#include "core/policy_factory.hh"
#include "tlb/tlb.hh"
#include "util/atomic_file.hh"
#include "util/random.hh"
#include "util/simd.hh"

namespace chirp
{
namespace
{

/** Drive a policy-backed TLB with a mixed hit/miss stream. */
void
runAccessStream(benchmark::State &state, PolicyKind kind)
{
    TlbConfig config;
    config.entries = 1024;
    config.assoc = 8;
    Tlb tlb(config, makePolicy(kind, 128, 8));

    Rng rng(42);
    // Pre-generate a stream: 70% from a hot set (hits), 30% cold.
    std::vector<AccessInfo> stream;
    stream.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
        AccessInfo info;
        info.pc = 0x400000 + 4 * rng.below(256);
        info.cls = InstClass::Load;
        info.vaddr = rng.chance(0.7)
                         ? rng.below(512) * kPageSize
                         : (1000 + rng.below(1u << 20)) * kPageSize;
        stream.push_back(info);
    }

    // Retire events are delivered the way TlbHierarchy delivers them
    // in full runs: through a typed pointer when the policy is exactly
    // CHiRP or GHRP (the hooks inline), skipped for retire-blind
    // policies, virtual only for the generic remainder.
    ReplacementPolicy &pol = tlb.policy();
    auto *chirp_pol = dynamic_cast<ChirpPolicy *>(&pol);
    auto *ghrp_pol = dynamic_cast<GhrpPolicy *>(&pol);
    const bool wants_retire = pol.wantsRetireEvents();

    std::uint64_t now = 0;
    std::size_t pos = 0;
    for (auto _ : state) {
        const AccessInfo &info = stream[pos];
        benchmark::DoNotOptimize(tlb.access(info, 0, now++));
        // Branch/instruction events at a realistic ratio.
        if (chirp_pol)
            chirp_pol->onInstRetired(info.pc, InstClass::Load);
        else if (!ghrp_pol && wants_retire)
            pol.onInstRetired(info.pc, InstClass::Load);
        if ((now & 7) == 0) {
            const Addr bpc = info.pc + 60;
            const bool taken = (now & 8) != 0;
            if (chirp_pol)
                chirp_pol->onBranchRetired(bpc, InstClass::CondBranch,
                                           taken);
            else if (ghrp_pol)
                ghrp_pol->onBranchRetired(bpc, InstClass::CondBranch,
                                          taken);
            else if (wants_retire)
                pol.onBranchRetired(bpc, InstClass::CondBranch, taken);
        }
        pos = (pos + 1) & 4095;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Lru(benchmark::State &s) { runAccessStream(s, PolicyKind::Lru); }
void BM_Random(benchmark::State &s)
{
    runAccessStream(s, PolicyKind::Random);
}
void BM_Srrip(benchmark::State &s)
{
    runAccessStream(s, PolicyKind::Srrip);
}
void BM_Ship(benchmark::State &s) { runAccessStream(s, PolicyKind::Ship); }
void BM_Ghrp(benchmark::State &s) { runAccessStream(s, PolicyKind::Ghrp); }
void BM_Chirp(benchmark::State &s)
{
    runAccessStream(s, PolicyKind::Chirp);
}

BENCHMARK(BM_Lru);
BENCHMARK(BM_Random);
BENCHMARK(BM_Srrip);
BENCHMARK(BM_Ship);
BENCHMARK(BM_Ghrp);
BENCHMARK(BM_Chirp);

/** Cost of one CHiRP history update (the per-retire hardware path). */
void
BM_ChirpHistoryUpdate(benchmark::State &state)
{
    auto policy = makeChirp(128, 8, ChirpConfig{});
    Addr pc = 0x400000;
    for (auto _ : state) {
        policy->onInstRetired(pc, InstClass::Load);
        pc += 4;
        benchmark::DoNotOptimize(policy);
    }
}
BENCHMARK(BM_ChirpHistoryUpdate);

/** Cost of composing one CHiRP signature. */
void
BM_ChirpSignature(benchmark::State &state)
{
    auto policy = makeChirp(128, 8, ChirpConfig{});
    Addr pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy->currentSignature(pc));
        pc += 4;
    }
}
BENCHMARK(BM_ChirpSignature);

/**
 * Console reporting as usual, plus capture of each benchmark's
 * per-iteration real time for the JSON summary.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (!run.error_occurred)
                captured_.emplace_back(run.benchmark_name(),
                                       run.GetAdjustedRealTime());
        }
        ConsoleReporter::ReportRuns(runs);
    }

    /** (benchmark name, ns per iteration) in run order. */
    const std::vector<std::pair<std::string, double>> &
    captured() const
    {
        return captured_;
    }

  private:
    std::vector<std::pair<std::string, double>> captured_;
};

/**
 * Write the stable-schema summary: one "policies" key per benchmark,
 * value ns/access (ns/update for the two CHiRP component benches).
 */
void
writeJson(const CapturingReporter &reporter, const char *path)
{
    // Stable JSON keys for the benchmark functions above.
    static const std::pair<const char *, const char *> kNames[] = {
        {"BM_Lru", "lru"},
        {"BM_Random", "random"},
        {"BM_Srrip", "srrip"},
        {"BM_Ship", "ship"},
        {"BM_Ghrp", "ghrp"},
        {"BM_Chirp", "chirp"},
        {"BM_ChirpHistoryUpdate", "chirp_history_update"},
        {"BM_ChirpSignature", "chirp_signature"},
    };
    std::string json = "{\n"
                       "  \"bench\": \"micro_policy_overhead\",\n"
                       "  \"unit\": \"ns_per_access\",\n"
                       "  \"note\": \"simd_backend=";
    json += simd::backendName(simd::activeBackend());
    json += "\",\n"
            "  \"policies\": {\n";
    bool first = true;
    for (const auto &[bench, key] : kNames) {
        for (const auto &[name, ns] : reporter.captured()) {
            if (name != bench)
                continue;
            char line[128];
            std::snprintf(line, sizeof(line), "%s    \"%s\": %.2f",
                          first ? "" : ",\n", key, ns);
            json += line;
            first = false;
            break;
        }
    }
    json += "\n  }\n}\n";
    std::string error;
    if (!atomicWriteFile(path, json, &error)) {
        std::fprintf(stderr, "cannot write '%s': %s\n", path,
                     error.c_str());
        return;
    }
    std::printf("JSON written to %s\n", path);
}

} // namespace
} // namespace chirp

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    chirp::CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    chirp::writeJson(reporter, "BENCH_policy_overhead.json");
    return 0;
}
