/**
 * @file
 * Microbenchmark (google-benchmark): simulation cost per L2 TLB
 * access for each replacement policy, plus the cost of CHiRP's
 * history updates.
 *
 * This backs the §VI-B/§VI-E discussion: CHiRP's selective updates
 * keep its per-access work (and hence the modeled energy) close to
 * LRU's, unlike per-access predictors.  Absolute numbers are host
 * timings of the simulator, not hardware latencies.
 */

#include <benchmark/benchmark.h>

#include "core/policy_factory.hh"
#include "tlb/tlb.hh"
#include "util/random.hh"

namespace chirp
{
namespace
{

/** Drive a policy-backed TLB with a mixed hit/miss stream. */
void
runAccessStream(benchmark::State &state, PolicyKind kind)
{
    TlbConfig config;
    config.entries = 1024;
    config.assoc = 8;
    Tlb tlb(config, makePolicy(kind, 128, 8));

    Rng rng(42);
    // Pre-generate a stream: 70% from a hot set (hits), 30% cold.
    std::vector<AccessInfo> stream;
    stream.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
        AccessInfo info;
        info.pc = 0x400000 + 4 * rng.below(256);
        info.cls = InstClass::Load;
        info.vaddr = rng.chance(0.7)
                         ? rng.below(512) * kPageSize
                         : (1000 + rng.below(1u << 20)) * kPageSize;
        stream.push_back(info);
    }

    std::uint64_t now = 0;
    std::size_t pos = 0;
    for (auto _ : state) {
        const AccessInfo &info = stream[pos];
        benchmark::DoNotOptimize(tlb.access(info, 0, now++));
        // Branch/instruction events at a realistic ratio.
        tlb.policy().onInstRetired(info.pc, InstClass::Load);
        if ((now & 7) == 0) {
            tlb.policy().onBranchRetired(info.pc + 60,
                                         InstClass::CondBranch,
                                         (now & 8) != 0);
        }
        pos = (pos + 1) & 4095;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Lru(benchmark::State &s) { runAccessStream(s, PolicyKind::Lru); }
void BM_Random(benchmark::State &s)
{
    runAccessStream(s, PolicyKind::Random);
}
void BM_Srrip(benchmark::State &s)
{
    runAccessStream(s, PolicyKind::Srrip);
}
void BM_Ship(benchmark::State &s) { runAccessStream(s, PolicyKind::Ship); }
void BM_Ghrp(benchmark::State &s) { runAccessStream(s, PolicyKind::Ghrp); }
void BM_Chirp(benchmark::State &s)
{
    runAccessStream(s, PolicyKind::Chirp);
}

BENCHMARK(BM_Lru);
BENCHMARK(BM_Random);
BENCHMARK(BM_Srrip);
BENCHMARK(BM_Ship);
BENCHMARK(BM_Ghrp);
BENCHMARK(BM_Chirp);

/** Cost of one CHiRP history update (the per-retire hardware path). */
void
BM_ChirpHistoryUpdate(benchmark::State &state)
{
    auto policy = makeChirp(128, 8, ChirpConfig{});
    Addr pc = 0x400000;
    for (auto _ : state) {
        policy->onInstRetired(pc, InstClass::Load);
        pc += 4;
        benchmark::DoNotOptimize(policy);
    }
}
BENCHMARK(BM_ChirpHistoryUpdate);

/** Cost of composing one CHiRP signature. */
void
BM_ChirpSignature(benchmark::State &state)
{
    auto policy = makeChirp(128, 8, ChirpConfig{});
    Addr pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy->currentSignature(pc));
        pc += 4;
    }
}
BENCHMARK(BM_ChirpSignature);

} // namespace
} // namespace chirp

BENCHMARK_MAIN();
