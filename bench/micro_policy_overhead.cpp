/**
 * @file
 * Microbenchmark (google-benchmark): simulation cost per L2 TLB
 * access for each replacement policy, plus the cost of CHiRP's
 * history updates.
 *
 * This backs the §VI-B/§VI-E discussion: CHiRP's selective updates
 * keep its per-access work (and hence the modeled energy) close to
 * LRU's, unlike per-access predictors.  Absolute numbers are host
 * timings of the simulator, not hardware latencies.
 *
 * Besides the usual console table, writes BENCH_policy_overhead.json
 * (ns/access per policy, stable schema) so CI can archive the perf
 * trajectory of the policy hot paths and soft-gate regressions
 * against the committed baseline.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/chirp.hh"
#include "core/ghrp.hh"
#include "core/policy_factory.hh"
#include "tlb/tlb.hh"
#include "util/atomic_file.hh"
#include "util/random.hh"
#include "util/simd.hh"

namespace chirp
{
namespace
{

/** Accesses driven per benchmark iteration (one replay chunk). */
constexpr std::size_t kChunk = 256;

/** The pre-generated mixed hit/miss stream every series replays. */
struct BenchStream
{
    std::vector<AccessInfo> infos;
    std::vector<Addr> vaddrs;
    std::vector<std::uint8_t> shifts;
    std::vector<Addr> keys;

    BenchStream()
    {
        Rng rng(42);
        // 70% from a hot set (hits), 30% cold.
        for (int i = 0; i < 4096; ++i) {
            AccessInfo info;
            info.pc = 0x400000 + 4 * rng.below(256);
            info.cls = InstClass::Load;
            info.vaddr = rng.chance(0.7)
                             ? rng.below(512) * kPageSize
                             : (1000 + rng.below(1u << 20)) * kPageSize;
            infos.push_back(info);
            vaddrs.push_back(info.vaddr);
            shifts.push_back(kPageShift);
        }
        keys.resize(infos.size());
        Tlb::keysOf(vaddrs.data(), shifts.data(), infos.size(), 0,
                    keys.data());
    }
};

/**
 * Drive a policy-backed TLB with the mixed stream through the batched
 * translate pipeline — vectorized key precompute plus one
 * accessBatch() per chunk, exactly what the simulator's chunk runner
 * issues per 256 records — so the series tracks the cost the suite
 * actually pays per access.  Each benchmark iteration replays one
 * chunk; the reported ns/iteration is divided by kChunk in the JSON.
 */
void
runAccessStream(benchmark::State &state, PolicyKind kind)
{
    TlbConfig config;
    config.entries = 1024;
    config.assoc = 8;
    Tlb tlb(config, makePolicy(kind, 128, 8));
    BenchStream stream;

    // Retire events are delivered the way TlbHierarchy delivers them
    // in full runs: through a typed pointer when the policy is exactly
    // CHiRP or GHRP (the hooks inline), skipped for retire-blind
    // policies, virtual only for the generic remainder.
    ReplacementPolicy &pol = tlb.policy();
    auto *chirp_pol = dynamic_cast<ChirpPolicy *>(&pol);
    auto *ghrp_pol = dynamic_cast<GhrpPolicy *>(&pol);
    const bool wants_retire = pol.wantsRetireEvents();

    std::uint64_t nows[kChunk];
    std::uint8_t hits[kChunk];
    Addr keys[kChunk];
    std::uint64_t now = 0;
    std::size_t pos = 0;
    for (auto _ : state) {
        // The key precompute is part of the per-chunk pipeline cost.
        Tlb::keysOf(stream.vaddrs.data() + pos,
                    stream.shifts.data() + pos, kChunk, 0, keys);
        for (std::size_t i = 0; i < kChunk; ++i)
            nows[i] = now + i;
        tlb.accessBatch(stream.infos.data() + pos, keys, nows, kChunk,
                        0, hits);
        benchmark::DoNotOptimize(hits[0]);
        // Branch/instruction events at a realistic ratio.
        for (std::size_t i = 0; i < kChunk; ++i) {
            const AccessInfo &info = stream.infos[pos + i];
            if (chirp_pol)
                chirp_pol->onInstRetired(info.pc, InstClass::Load);
            else if (!ghrp_pol && wants_retire)
                pol.onInstRetired(info.pc, InstClass::Load);
            if (((now + i) & 7) == 7) {
                const Addr bpc = info.pc + 60;
                const bool taken = ((now + i) & 8) != 0;
                if (chirp_pol)
                    chirp_pol->onBranchRetired(
                        bpc, InstClass::CondBranch, taken);
                else if (ghrp_pol)
                    ghrp_pol->onBranchRetired(
                        bpc, InstClass::CondBranch, taken);
                else if (wants_retire)
                    pol.onBranchRetired(bpc, InstClass::CondBranch,
                                        taken);
            }
        }
        now += kChunk;
        pos = (pos + kChunk) & 4095;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChunk);
}

/**
 * The framework floor: vectorized key precompute plus a probe-only
 * set scan per access — no policy hooks, no fills, no statistics.
 * This is what translate costs with the policy study removed, the
 * floor every policy series above sits on; its own soft gate keeps
 * the batched pipeline itself from regressing unnoticed.
 */
void
BM_TranslateOnly(benchmark::State &state)
{
    TlbConfig config;
    config.entries = 1024;
    config.assoc = 8;
    Tlb tlb(config, makePolicy(PolicyKind::Lru, 128, 8));
    BenchStream stream;
    // Prefill so probes see the steady-state hit/miss mix.
    {
        std::uint64_t nows[kChunk];
        std::uint8_t hits[kChunk];
        for (std::size_t pos = 0; pos < stream.infos.size();
             pos += kChunk) {
            for (std::size_t i = 0; i < kChunk; ++i)
                nows[i] = pos + i;
            tlb.accessBatch(stream.infos.data() + pos,
                            stream.keys.data() + pos, nows, kChunk, 0,
                            hits);
        }
    }
    Addr keys[kChunk];
    std::size_t pos = 0;
    std::uint64_t found = 0;
    for (auto _ : state) {
        Tlb::keysOf(stream.vaddrs.data() + pos,
                    stream.shifts.data() + pos, kChunk, 0, keys);
        for (std::size_t i = 0; i < kChunk; ++i)
            found += tlb.probe(stream.vaddrs[pos + i], 0) ? 1 : 0;
        benchmark::DoNotOptimize(found);
        pos = (pos + kChunk) & 4095;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChunk);
}
BENCHMARK(BM_TranslateOnly);

void BM_Lru(benchmark::State &s) { runAccessStream(s, PolicyKind::Lru); }
void BM_Random(benchmark::State &s)
{
    runAccessStream(s, PolicyKind::Random);
}
void BM_Srrip(benchmark::State &s)
{
    runAccessStream(s, PolicyKind::Srrip);
}
void BM_Ship(benchmark::State &s) { runAccessStream(s, PolicyKind::Ship); }
void BM_Ghrp(benchmark::State &s) { runAccessStream(s, PolicyKind::Ghrp); }
void BM_Chirp(benchmark::State &s)
{
    runAccessStream(s, PolicyKind::Chirp);
}

BENCHMARK(BM_Lru);
BENCHMARK(BM_Random);
BENCHMARK(BM_Srrip);
BENCHMARK(BM_Ship);
BENCHMARK(BM_Ghrp);
BENCHMARK(BM_Chirp);

/** Cost of one CHiRP history update (the per-retire hardware path). */
void
BM_ChirpHistoryUpdate(benchmark::State &state)
{
    auto policy = makeChirp(128, 8, ChirpConfig{});
    Addr pc = 0x400000;
    for (auto _ : state) {
        policy->onInstRetired(pc, InstClass::Load);
        pc += 4;
        benchmark::DoNotOptimize(policy);
    }
}
BENCHMARK(BM_ChirpHistoryUpdate);

/** Cost of composing one CHiRP signature. */
void
BM_ChirpSignature(benchmark::State &state)
{
    auto policy = makeChirp(128, 8, ChirpConfig{});
    Addr pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy->currentSignature(pc));
        pc += 4;
    }
}
BENCHMARK(BM_ChirpSignature);

/**
 * Console reporting as usual, plus capture of each benchmark's
 * per-iteration real time for the JSON summary.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (!run.error_occurred)
                captured_.emplace_back(run.benchmark_name(),
                                       run.GetAdjustedRealTime());
        }
        ConsoleReporter::ReportRuns(runs);
    }

    /** (benchmark name, ns per iteration) in run order. */
    const std::vector<std::pair<std::string, double>> &
    captured() const
    {
        return captured_;
    }

  private:
    std::vector<std::pair<std::string, double>> captured_;
};

/**
 * Write the stable-schema summary: one "policies" key per benchmark,
 * value ns/access (ns/update for the two CHiRP component benches).
 */
void
writeJson(const CapturingReporter &reporter, const char *path)
{
    // Stable JSON keys for the benchmark functions above, with the
    // accesses driven per benchmark iteration (the chunked series
    // replay kChunk accesses per iteration; the captured ns is per
    // iteration, so the JSON divides it back to ns/access).
    struct NameMap
    {
        const char *bench;
        const char *key;
        double itemsPerIter;
    };
    static const NameMap kNames[] = {
        {"BM_TranslateOnly", "translate_only",
         static_cast<double>(kChunk)},
        {"BM_Lru", "lru", static_cast<double>(kChunk)},
        {"BM_Random", "random", static_cast<double>(kChunk)},
        {"BM_Srrip", "srrip", static_cast<double>(kChunk)},
        {"BM_Ship", "ship", static_cast<double>(kChunk)},
        {"BM_Ghrp", "ghrp", static_cast<double>(kChunk)},
        {"BM_Chirp", "chirp", static_cast<double>(kChunk)},
        {"BM_ChirpHistoryUpdate", "chirp_history_update", 1.0},
        {"BM_ChirpSignature", "chirp_signature", 1.0},
    };
    std::string json = "{\n"
                       "  \"bench\": \"micro_policy_overhead\",\n"
                       "  \"unit\": \"ns_per_access\",\n"
                       "  \"note\": \"simd_backend=";
    json += simd::backendName(simd::activeBackend());
    json += ";miss_path=";
    json += chirp::batchMissPath() ? "batched" : "scalar";
    json += "\",\n"
            "  \"policies\": {\n";
    bool first = true;
    for (const auto &entry : kNames) {
        for (const auto &[name, ns] : reporter.captured()) {
            if (name != entry.bench)
                continue;
            char line[128];
            std::snprintf(line, sizeof(line), "%s    \"%s\": %.2f",
                          first ? "" : ",\n", entry.key,
                          ns / entry.itemsPerIter);
            json += line;
            first = false;
            break;
        }
    }
    json += "\n  }\n}\n";
    std::string error;
    if (!atomicWriteFile(path, json, &error)) {
        std::fprintf(stderr, "cannot write '%s': %s\n", path,
                     error.c_str());
        return;
    }
    std::printf("JSON written to %s\n", path);
}

} // namespace
} // namespace chirp

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    chirp::CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    chirp::writeJson(reporter, "BENCH_policy_overhead.json");
    return 0;
}
