/**
 * @file
 * Table II reproduction: print the simulated machine configuration
 * and verify it matches the paper's parameters.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace chirp;
using namespace chirp::bench;

int
main()
{
    const SimConfig config;

    TableFormatter table;
    table.header({"component", "simulated parameter", "paper (Table II)"});
    auto cache_row = [&](const char *name, const CacheConfig &c,
                         const char *paper) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%lluKB, %u way, %llu cycles",
                      static_cast<unsigned long long>(c.sizeBytes / 1024),
                      c.assoc,
                      static_cast<unsigned long long>(c.latency));
        table.row({name, buf, paper});
    };
    cache_row("L1 i-Cache", config.caches.l1i, "64KB, 8 way, 4 cycles");
    cache_row("L1 d-Cache", config.caches.l1d, "64KB, 8 way, 4 cycles");
    cache_row("L2 Unified Cache", config.caches.l2,
              "256KB, 16 way, 12 cycles");
    cache_row("L3 Unified Cache", config.caches.l3,
              "8MB, 16 way, 42 cycles");
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu cycles",
                      static_cast<unsigned long long>(
                          config.caches.dramLatency));
        table.row({"DRAM", buf, "240 cycles"});
    }
    {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "hashed perceptron, %u-entry BTB, %llu cycle "
                      "penalty",
                      config.branch.btbEntries,
                      static_cast<unsigned long long>(
                          config.branch.mispredictPenalty));
        table.row({"Branch Predictor", buf,
                   "hashed perceptron, 4K BTB, 20 cycle penalty"});
    }
    auto tlb_row = [&](const char *name, const TlbConfig &t,
                       const char *paper) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%u entry, %u way, %llu cycle",
                      t.entries, t.assoc,
                      static_cast<unsigned long long>(t.hitLatency));
        table.row({name, buf, paper});
    };
    tlb_row("L1 i-TLB", config.tlbs.l1i, "64 entry, 8 way, 1 cycle");
    tlb_row("L1 d-TLB", config.tlbs.l1d, "64 entry, 8 way, 1 cycle");
    tlb_row("L2 Unified TLB", config.tlbs.l2,
            "1024 entry, 8 way, 8 cycle hit");
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "%llu cycles (sweep 20-340 in fig10)",
                      static_cast<unsigned long long>(
                          config.pageWalkLatency));
        table.row({"L2 TLB miss penalty", buf, "20 to 360 cycles"});
    }

    std::printf("== Table II: simulation parameters ==\n\n");
    table.print();

    // Hard assertions: the defaults ARE the paper's machine.
    bool ok = config.caches.l1i.sizeBytes == 64 * 1024 &&
              config.caches.l2.sizeBytes == 256 * 1024 &&
              config.caches.l3.sizeBytes == 8 * 1024 * 1024 &&
              config.caches.dramLatency == 240 &&
              config.branch.btbEntries == 4096 &&
              config.branch.mispredictPenalty == 20 &&
              config.tlbs.l1i.entries == 64 &&
              config.tlbs.l1d.entries == 64 &&
              config.tlbs.l2.entries == 1024 &&
              config.tlbs.l2.assoc == 8 &&
              config.tlbs.l2.hitLatency == 8;
    std::printf("\nconfiguration matches Table II: %s\n",
                ok ? "YES" : "NO");
    return ok ? 0 : 1;
}
