/**
 * @file
 * Fig 11 reproduction: density of (prediction-table accesses / L2
 * TLB accesses) across the suite for SHiP, GHRP and CHiRP.
 *
 * Paper: SHiP and GHRP exceed 100% with high variance (a read for
 * the prediction plus a write for training on every access); CHiRP
 * averages 10.14% with low variance.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "util/stats.hh"

using namespace chirp;
using namespace chirp::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 60, /*mpki_only=*/true);
    printBanner("Fig 11: prediction-table access rate density", ctx);

    const Runner runner = ctx.runner();
    const struct
    {
        PolicyKind kind;
        double paper_mean;
    } policies[] = {
        {PolicyKind::Ship, 1.0},  // paper: "over 100% in many cases"
        {PolicyKind::Ghrp, 1.0},
        {PolicyKind::Chirp, 0.1014},
    };

    CsvWriter csv("fig11_table_access_rate.csv");
    csv.row({"policy", "bin_center", "density"});

    TableFormatter summary;
    summary.header({"policy", "mean rate (measured)", "stddev",
                    "min", "max", "paper mean"});

    for (const auto &entry : policies) {
        const auto results = runner.runSuite(
            ctx.suite, Runner::factoryFor(entry.kind),
            policyKindName(entry.kind));
        RunningStat stat;
        Histogram density(0.0, 8.0, 32);
        for (const auto &r : results) {
            stat.push(r.stats.tableAccessRate());
            density.push(r.stats.tableAccessRate());
        }
        for (std::size_t bin = 0; bin < density.bins(); ++bin) {
            if (density.binCount(bin) == 0)
                continue;
            csv.row({policyKindName(entry.kind),
                     TableFormatter::num(density.binCenter(bin), 3),
                     TableFormatter::num(density.density(bin), 4)});
        }
        summary.row({policyKindName(entry.kind),
                     TableFormatter::num(stat.mean(), 3),
                     TableFormatter::num(stat.stddev(), 3),
                     TableFormatter::num(stat.min(), 3),
                     TableFormatter::num(stat.max(), 3),
                     TableFormatter::num(entry.paper_mean, 3)});
    }
    summary.print();
    std::printf("\n(rates are table accesses per L2 TLB access; >1 "
                "means multiple reads+writes per access)\n");
    std::printf("CSV written to fig11_table_access_rate.csv\n");
    return finish(ctx);
}
