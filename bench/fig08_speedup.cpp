/**
 * @file
 * Fig 8 reproduction: per-workload speedup over LRU at a 150-cycle
 * L2 TLB miss penalty, with the paper's geomean summary.
 *
 * Paper geomeans: CHiRP 4.80%, SRRIP 1.65%, GHRP 0.94%, Random
 * 0.42%, SHiP 0.13%.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench/harness.hh"

using namespace chirp;
using namespace chirp::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 48, /*mpki_only=*/false);
    ctx.config.pageWalkLatency = 150;
    printBanner("Fig 8: speedup over LRU at a 150-cycle miss penalty",
                ctx);

    const auto results = runAllPolicies(ctx);
    const auto &lru = results.at(PolicyKind::Lru);

    CsvWriter csv("fig08_speedup.csv");
    {
        std::vector<std::string> header = {"workload"};
        for (const PolicyKind kind : allPolicyKinds()) {
            if (kind != PolicyKind::Lru)
                header.push_back(std::string(policyKindName(kind)) +
                                 "_speedup_pct");
        }
        csv.row(header);
    }
    for (std::size_t i = 0; i < ctx.suite.size(); ++i) {
        std::vector<std::string> row = {ctx.suite[i].name};
        for (const PolicyKind kind : allPolicyKinds()) {
            if (kind == PolicyKind::Lru)
                continue;
            const double speedup =
                (results.at(kind)[i].stats.ipcAtPenalty(150) /
                     lru[i].stats.ipcAtPenalty(150) -
                 1.0) *
                100.0;
            row.push_back(TableFormatter::num(speedup, 3));
        }
        csv.row(row);
    }

    const struct
    {
        PolicyKind kind;
        double paper;
    } reference[] = {
        {PolicyKind::Random, 0.42}, {PolicyKind::Srrip, 1.65},
        {PolicyKind::Ship, 0.13},   {PolicyKind::Ghrp, 0.94},
        {PolicyKind::Chirp, 4.80},
    };
    TableFormatter summary;
    summary.header({"policy", "geomean speedup % (measured)",
                    "geomean speedup % (paper)"});
    for (const auto &ref : reference) {
        summary.row({policyKindName(ref.kind),
                     TableFormatter::num(
                         speedupPct(lru, results.at(ref.kind), 150), 2),
                     TableFormatter::num(ref.paper, 2)});
    }
    summary.print();
    std::printf("\nCSV written to fig08_speedup.csv\n");
    return finish(ctx);
}
