/**
 * @file
 * Trace-replay throughput microbench: how fast records reach a
 * consumer from (a) the synthetic generator, (b) a materialized
 * in-memory trace pulled one record at a time, and (c) the same
 * trace pulled through the batched nextBatch() hot path the
 * simulator uses.
 *
 * Prints a table and writes BENCH_trace_replay.json (records/sec per
 * path plus the batched-vs-generator speedup) so CI can archive the
 * perf trajectory of the replay hot path.
 *
 * Usage: trace_replay_throughput [--records N] [--reps N] [--out F]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/trace_store.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace chirp;

namespace
{

/** Best-of-reps wall-clock records/sec for one replay strategy. */
template <typename Fn>
double
throughput(std::uint64_t records, unsigned reps, Fn &&run)
{
    double best = 0.0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        run();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        const double rate =
            static_cast<double>(records) / elapsed.count();
        best = std::max(best, rate);
    }
    return best;
}

/** Fold a record into a sink so the compiler cannot drop the pull. */
inline std::uint64_t
consume(const TraceRecord &rec, std::uint64_t sink)
{
    return sink ^ (rec.pc + rec.effAddr + rec.target +
                   static_cast<std::uint64_t>(rec.cls));
}

std::uint64_t
parseCount(const char *text)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || value == 0)
        chirp_fatal("expected a positive integer, got '", text, "'");
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t records = 2'000'000;
    unsigned reps = 3;
    std::string out = "BENCH_trace_replay.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                chirp_fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--records") {
            records = parseCount(value());
        } else if (arg == "--reps") {
            reps = static_cast<unsigned>(parseCount(value()));
        } else if (arg == "--out") {
            out = value();
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--records N] [--reps N] [--out F]\n",
                        argv[0]);
            return 0;
        } else {
            chirp_fatal("unknown argument '", arg, "' (try --help)");
        }
    }

    WorkloadConfig workload;
    workload.category = Category::Spec;
    workload.seed = 0xC41B7;
    workload.length = records;
    workload.name = "replay_bench";

    std::printf("== trace replay throughput ==\n");
    std::printf("%llu records (spec workload), best of %u reps\n\n",
                static_cast<unsigned long long>(records), reps);

    volatile std::uint64_t guard = 0;

    // Path A: the generator itself, the cost every policy used to pay.
    const auto program = buildWorkload(workload);
    const double gen_rate = throughput(records, reps, [&] {
        program->reset();
        TraceRecord rec;
        std::uint64_t sink = 0;
        while (program->next(rec))
            sink = consume(rec, sink);
        guard = guard ^ sink;
    });

    // Materialize once; paths B/C replay the shared flat stream.
    const auto trace = std::make_shared<ColumnarTrace>(
        materializeWorkload(workload));

    // Path B: in-memory replay, one virtual next() per record.
    MemoryTraceSource scalar(trace, "scalar");
    const double scalar_rate = throughput(records, reps, [&] {
        scalar.reset();
        TraceRecord rec;
        std::uint64_t sink = 0;
        while (scalar.next(rec))
            sink = consume(rec, sink);
        guard = guard ^ sink;
    });

    // Path C: the simulator's batched pull (one virtual call per
    // 256-record chunk copied to a flat L1-resident buffer).
    MemoryTraceSource batched(trace, "batched");
    const double batched_rate = throughput(records, reps, [&] {
        batched.reset();
        TraceRecord buf[256];
        std::uint64_t sink = 0;
        std::size_t got;
        while ((got = batched.nextBatch(buf, 256)) > 0) {
            for (std::size_t i = 0; i < got; ++i)
                sink = consume(buf[i], sink);
        }
        guard = guard ^ sink;
    });

    TableFormatter table;
    table.header({"path", "records/sec", "vs generator"});
    const auto row = [&](const char *name, double rate) {
        table.row({name, TableFormatter::num(rate / 1e6, 2) + "M",
                   TableFormatter::num(rate / gen_rate, 2) + "x"});
    };
    row("generator", gen_rate);
    row("memory scalar next()", scalar_rate);
    row("memory batched nextBatch()", batched_rate);
    table.print();

    char json[768];
    std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"bench\": \"trace_replay_throughput\",\n"
        "  \"records\": %llu,\n"
        "  \"reps\": %u,\n"
        "  \"paths\": {\n"
        "    \"generator\": {\"records_per_sec\": %.0f},\n"
        "    \"memory_scalar\": {\"records_per_sec\": %.0f},\n"
        "    \"memory_batched\": {\"records_per_sec\": %.0f}\n"
        "  },\n"
        "  \"batched_vs_generator_speedup\": %.3f\n"
        "}\n",
        static_cast<unsigned long long>(records), reps, gen_rate,
        scalar_rate, batched_rate, batched_rate / gen_rate);
    std::string error;
    if (!atomicWriteFile(out, json, &error))
        chirp_fatal("cannot write '", out, "': ", error);
    std::printf("\nJSON written to %s\n", out.c_str());
    return 0;
}
