/**
 * @file
 * Fig 6 reproduction: the ablation ladder showing how each feature /
 * optimization moves average-MPKI reduction over LRU.
 *
 * Paper rungs (reduction of average MPKI over 870 traces vs LRU):
 *   SHiP (PC-only)                          +0.88%
 *   SHiP, unlimited table (no aliasing)     +0.63%
 *   SHiP, prediction on a subset of sets    +1.28%
 *   SHiP + Selective Hit Update             +5.85%
 *   CHiRP path history only (no branches)     --     (see Fig 2)
 *   + conditional branch history            +23.88%
 *   + two leading zeros in the path         +26.98%
 *   full CHiRP (+ indirect branch history)  +28.21%
 */

#include <cstdio>
#include <functional>

#include "bench/harness.hh"

using namespace chirp;
using namespace chirp::bench;

namespace
{

struct Rung
{
    const char *name;
    double paper; //!< paper's MPKI reduction %, NaN-ish -1000 = n/a
    PolicyFactory factory;
};

ChirpConfig
chirpVariant(bool cond, bool uncond, bool zeros)
{
    ChirpConfig config;
    config.history.useCondHist = cond;
    config.history.useUncondHist = uncond;
    config.history.pathZeroBits = zeros ? 2 : 0;
    return config;
}

ShipConfig
shipVariant(bool unlimited, double subset, HitUpdateMode mode)
{
    ShipConfig config;
    config.unlimitedTable = unlimited;
    config.predictedSetsFraction = subset;
    config.hitUpdate = mode;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = makeContext(argc, argv, 48, /*mpki_only=*/true);
    printBanner("Fig 6: feature/optimization ablation (MPKI reduction % "
                "over LRU)", ctx);

    const std::vector<Rung> rungs = {
        {"ship-pc-only", 0.88,
         [](std::uint32_t s, std::uint32_t a) {
             return makeShip(s, a,
                             shipVariant(false, 1.0,
                                         HitUpdateMode::Every));
         }},
        {"ship-unlimited-table", 0.63,
         [](std::uint32_t s, std::uint32_t a) {
             return makeShip(s, a,
                             shipVariant(true, 1.0,
                                         HitUpdateMode::Every));
         }},
        {"ship-subset-sets", 1.28,
         [](std::uint32_t s, std::uint32_t a) {
             return makeShip(s, a,
                             shipVariant(false, 0.5,
                                         HitUpdateMode::Every));
         }},
        {"ship-selective-hit-update", 5.85,
         [](std::uint32_t s, std::uint32_t a) {
             return makeShip(s, a,
                             shipVariant(false, 1.0,
                                         HitUpdateMode::FirstHitDiffSet));
         }},
        {"srrip", 10.36, Runner::factoryFor(PolicyKind::Srrip)},
        {"ghrp", 9.03, Runner::factoryFor(PolicyKind::Ghrp)},
        {"chirp-path-only", -1000,
         [](std::uint32_t s, std::uint32_t a) {
             return makeChirp(s, a, chirpVariant(false, false, true));
         }},
        {"chirp-no-zeros+cond", 23.88,
         [](std::uint32_t s, std::uint32_t a) {
             return makeChirp(s, a, chirpVariant(true, false, false));
         }},
        {"chirp-zeros+cond", 26.98,
         [](std::uint32_t s, std::uint32_t a) {
             return makeChirp(s, a, chirpVariant(true, false, true));
         }},
        {"chirp-full", 28.21,
         [](std::uint32_t s, std::uint32_t a) {
             return makeChirp(s, a, chirpVariant(true, true, true));
         }},
    };

    // One multi-policy run: the LRU baseline plus every rung replays
    // each workload's materialized trace instead of regenerating it
    // once per configuration.
    const Runner runner = ctx.runner();
    std::vector<PolicyFactory> factories = {
        Runner::factoryFor(PolicyKind::Lru)};
    for (const Rung &rung : rungs)
        factories.push_back(rung.factory);
    const auto all = runner.runSuiteMulti(ctx.suite, factories,
                                          "ablation");
    const auto &lru = all[0];

    TableFormatter table;
    table.header({"configuration", "avg MPKI", "reduction % (measured)",
                  "reduction % (paper)"});
    CsvWriter csv("fig06_ablation.csv");
    csv.row({"configuration", "avg_mpki", "reduction_pct_measured",
             "reduction_pct_paper"});

    for (std::size_t r = 0; r < rungs.size(); ++r) {
        const Rung &rung = rungs[r];
        const auto &results = all[r + 1];
        const double mpki = averageMpki(results);
        const double reduction = mpkiReductionPct(lru, results);
        const std::string paper =
            rung.paper <= -1000 ? "-" : paperCell(rung.paper);
        table.row({rung.name, TableFormatter::num(mpki, 3),
                   TableFormatter::num(reduction, 2), paper});
        csv.row({rung.name, TableFormatter::num(mpki, 4),
                 TableFormatter::num(reduction, 3), paper});
    }
    table.row({"(baseline lru)", TableFormatter::num(averageMpki(lru), 3),
               "0.00", "0.00"});
    table.print();
    std::printf("\nCSV written to fig06_ablation.csv\n");
    return finish(ctx);
}
