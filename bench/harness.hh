/**
 * @file
 * Shared scaffolding for the figure/table-reproduction benches.
 *
 * Every bench binary prints a paper-vs-measured table on stdout and
 * writes a CSV into the working directory.  Fidelity scales through
 * the CHIRP_SUITE_SIZE / CHIRP_TRACE_LEN / CHIRP_SEED environment
 * variables (see workload_suite.hh).  Suite runs shard across worker
 * threads: `--jobs N` (or the CHIRP_JOBS environment variable) picks
 * the worker count, defaulting to hardware concurrency; `--jobs 1`
 * restores the legacy serial path.  Multi-policy sweeps materialize
 * each workload's trace once in the runner's TraceStore and replay
 * it for every policy; `--trace-cache DIR` (or CHIRP_TRACE_CACHE)
 * persists those traces on disk across runs, and `--no-trace-store`
 * restores the legacy regenerate-per-policy path.  CSVs are
 * bit-identical across all of those modes at any job count.
 *
 * Resilience: a failing job no longer aborts a bench.  Failures are
 * isolated per job, retried when transient (`--retries N`), cancelled
 * and recorded as timed-out when overrunning `--job-timeout MS`,
 * journaled to "<output>.csv.journal" as they complete, and
 * summarized at exit; the bench then exits non-zero via finish().
 * `--resume` reloads the journal and skips every already-completed
 * job, reproducing the CSVs byte-identically.  CHIRP_FAULT injects
 * deterministic faults (see util/fault_injection.hh).
 *
 * Distributed sweeps: `--workers N` forks N worker processes
 * (re-executions of the same binary) and shards multi-policy suite
 * runs across them through the crash-tolerant sweep fabric (see
 * dist/fabric.hh); `--coordinator PATH` additionally accepts external
 * workers over an AF_UNIX socket, and `--worker PATH` turns this
 * process into such a worker.  The merged CSVs are byte-identical to
 * a single-process run, even when workers are killed mid-shard.
 * `--worker-fd FD --worker-id N` are the internal flags a spawned
 * worker is launched with.
 *
 * External traces: `--trace-in PATH` (repeatable, or CHIRP_TRACE_IN
 * with comma-separated paths) replaces the synthetic suite with one
 * workload per ChampSim/CVP trace file, ingested through the hardened
 * front-end in trace/ingest/.  `--trace-in-format auto|champsim|cvp`
 * pins the container format, and `--ingest-bad-budget N` bounds the
 * decode failures tolerated per file.  A malformed file fails only
 * its own jobs (through SuiteHealth); the suite, the CSVs and the
 * exit-code contract are otherwise unchanged, and ingested suites
 * stay byte-identical across --jobs and --workers.
 */

#ifndef CHIRP_BENCH_HARNESS_HH
#define CHIRP_BENCH_HARNESS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/fabric.hh"
#include "sim/run_journal.hh"
#include "sim/runner.hh"
#include "util/csv.hh"
#include "util/table.hh"

namespace chirp::bench
{

/** Everything a figure bench needs. */
struct BenchContext
{
    SuiteOptions options;
    std::vector<WorkloadConfig> suite;
    SimConfig config;
    /** Suite-runner worker threads (0 = hardware concurrency). */
    unsigned jobs = 0;
    /** Disk tier for materialized traces ("" = memory only). */
    std::string traceCacheDir;
    /** Share one materialization across policies (runSuiteMulti). */
    bool shareTraces = true;
    /** Retry/watchdog knobs forwarded to every Runner. */
    ResilienceOptions resilience;
    /** Sidecar journal of completed jobs ("" disables journaling). */
    std::string journalPath;
    /** Skip jobs already present in the journal. */
    bool resume = false;
    /** Bench binary basename, naming the journal's identity. */
    std::string benchName = "bench";
    /** Sweep-fabric end (coordinator or worker); null = in-process. */
    std::shared_ptr<dist::SweepFabric> fabric;
    /** Job-outcome ledger shared by every Runner of this bench. */
    std::shared_ptr<SuiteHealth> health =
        std::make_shared<SuiteHealth>();
    /** Lazily opened by runner() so all Runners share one journal. */
    mutable std::shared_ptr<RunJournal> journal;

    /**
     * Field-wise identity of this run (bench name, workload-grid
     * hash, sim-config hash, row schema); guards the journal against
     * resuming a run with different parameters and lets a mismatch
     * report name the diverging field.
     */
    JournalIdentity identity() const;

    /** Combined hash of identity(); stamps the shard ledger too. */
    std::uint64_t fingerprint() const;

    Runner
    runner() const
    {
        Runner runner(config, jobs);
        if (!traceCacheDir.empty())
            runner.setTraceCacheDir(traceCacheDir);
        runner.setResilience(resilience);
        runner.setHealth(health);
        if (!journalPath.empty()) {
            if (!journal) {
                journal = std::make_shared<RunJournal>(
                    journalPath, identity(), resume);
            }
            runner.setJournal(journal);
        }
        if (fabric)
            runner.setFabric(fabric);
        return runner;
    }
};

/**
 * Build the context for a bench.
 * @param default_suite_size workloads unless CHIRP_SUITE_SIZE is set
 * @param mpki_only disable cache/branch timing (faster; use for
 *        benches that report MPKI/table-rate/efficiency only)
 */
BenchContext makeContext(std::size_t default_suite_size, bool mpki_only);

/**
 * As above, but also parses the bench command line: `--jobs N` (or
 * `-j N`, `--jobs=N`) selects the suite-runner worker count,
 * `--trace-cache DIR` enables the on-disk trace tier,
 * `--no-trace-store` regenerates traces per policy (legacy path),
 * `--retries N` / `--job-timeout MS` tune failure handling,
 * `--resume` continues an interrupted run from its journal,
 * `--journal PATH` / `--no-journal` override the default
 * "<binary>.csv.journal" sidecar, `--workers N` /
 * `--coordinator PATH` / `--worker PATH` engage the distributed
 * sweep fabric (see the file comment), `--trace-in PATH` /
 * `--trace-in-format F` / `--ingest-bad-budget N` switch the suite to
 * external trace files (see the file comment), and `--help` prints
 * usage.
 * Unknown arguments are fatal.  Worker mode relocates the process
 * into a "chirp-workers/w<id>/" scratch directory and disables its
 * journal: only the coordinator's CSVs are real.
 */
BenchContext makeContext(int argc, char **argv,
                         std::size_t default_suite_size, bool mpki_only);

/**
 * Standard bench epilogue: report resumed/retried/hung/timed-out job
 * counts when any, summarize the sweep fabric's orchestration (lost
 * workers, requeued shards) on a coordinator, and return the bench's
 * exit code — 1 when any job failed (results incomplete), else 0.
 * Call as `return finish(ctx);`.
 */
int finish(const BenchContext &ctx);

/**
 * Worker count from CHIRP_JOBS, defaulting to hardware concurrency
 * when unset.
 */
unsigned jobsFromEnv();

/** Print the standard bench banner. */
void printBanner(const std::string &title, const BenchContext &ctx);

/**
 * Run every paper policy over the suite, returning results keyed by
 * policy (LRU is always included and is the baseline).  Each
 * workload's trace is materialized once and replayed for all
 * policies unless ctx.shareTraces is off.
 */
std::map<PolicyKind, std::vector<WorkloadResult>>
runAllPolicies(const BenchContext &ctx);

/** Format "paper vs measured" cells, e.g. "28.21" / "24.10". */
std::string paperCell(double value);

} // namespace chirp::bench

#endif // CHIRP_BENCH_HARNESS_HH
