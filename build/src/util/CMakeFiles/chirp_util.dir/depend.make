# Empty dependencies file for chirp_util.
# This may be replaced when dependencies are built.
