file(REMOVE_RECURSE
  "libchirp_util.a"
)
