file(REMOVE_RECURSE
  "CMakeFiles/chirp_util.dir/csv.cc.o"
  "CMakeFiles/chirp_util.dir/csv.cc.o.d"
  "CMakeFiles/chirp_util.dir/hashing.cc.o"
  "CMakeFiles/chirp_util.dir/hashing.cc.o.d"
  "CMakeFiles/chirp_util.dir/logging.cc.o"
  "CMakeFiles/chirp_util.dir/logging.cc.o.d"
  "CMakeFiles/chirp_util.dir/random.cc.o"
  "CMakeFiles/chirp_util.dir/random.cc.o.d"
  "CMakeFiles/chirp_util.dir/stats.cc.o"
  "CMakeFiles/chirp_util.dir/stats.cc.o.d"
  "CMakeFiles/chirp_util.dir/table.cc.o"
  "CMakeFiles/chirp_util.dir/table.cc.o.d"
  "libchirp_util.a"
  "libchirp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
