
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/page_map.cc" "src/tlb/CMakeFiles/chirp_tlb.dir/page_map.cc.o" "gcc" "src/tlb/CMakeFiles/chirp_tlb.dir/page_map.cc.o.d"
  "/root/repo/src/tlb/page_walker.cc" "src/tlb/CMakeFiles/chirp_tlb.dir/page_walker.cc.o" "gcc" "src/tlb/CMakeFiles/chirp_tlb.dir/page_walker.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/tlb/CMakeFiles/chirp_tlb.dir/tlb.cc.o" "gcc" "src/tlb/CMakeFiles/chirp_tlb.dir/tlb.cc.o.d"
  "/root/repo/src/tlb/tlb_hierarchy.cc" "src/tlb/CMakeFiles/chirp_tlb.dir/tlb_hierarchy.cc.o" "gcc" "src/tlb/CMakeFiles/chirp_tlb.dir/tlb_hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chirp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/chirp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chirp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chirp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
