file(REMOVE_RECURSE
  "CMakeFiles/chirp_tlb.dir/page_map.cc.o"
  "CMakeFiles/chirp_tlb.dir/page_map.cc.o.d"
  "CMakeFiles/chirp_tlb.dir/page_walker.cc.o"
  "CMakeFiles/chirp_tlb.dir/page_walker.cc.o.d"
  "CMakeFiles/chirp_tlb.dir/tlb.cc.o"
  "CMakeFiles/chirp_tlb.dir/tlb.cc.o.d"
  "CMakeFiles/chirp_tlb.dir/tlb_hierarchy.cc.o"
  "CMakeFiles/chirp_tlb.dir/tlb_hierarchy.cc.o.d"
  "libchirp_tlb.a"
  "libchirp_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
