file(REMOVE_RECURSE
  "libchirp_tlb.a"
)
