# Empty dependencies file for chirp_tlb.
# This may be replaced when dependencies are built.
