file(REMOVE_RECURSE
  "CMakeFiles/chirp_sim.dir/opt_bound.cc.o"
  "CMakeFiles/chirp_sim.dir/opt_bound.cc.o.d"
  "CMakeFiles/chirp_sim.dir/runner.cc.o"
  "CMakeFiles/chirp_sim.dir/runner.cc.o.d"
  "CMakeFiles/chirp_sim.dir/simulator.cc.o"
  "CMakeFiles/chirp_sim.dir/simulator.cc.o.d"
  "libchirp_sim.a"
  "libchirp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
