file(REMOVE_RECURSE
  "libchirp_sim.a"
)
