# Empty compiler generated dependencies file for chirp_sim.
# This may be replaced when dependencies are built.
