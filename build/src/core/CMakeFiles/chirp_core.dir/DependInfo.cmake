
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chirp.cc" "src/core/CMakeFiles/chirp_core.dir/chirp.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/chirp.cc.o.d"
  "/root/repo/src/core/drrip.cc" "src/core/CMakeFiles/chirp_core.dir/drrip.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/drrip.cc.o.d"
  "/root/repo/src/core/ghrp.cc" "src/core/CMakeFiles/chirp_core.dir/ghrp.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/ghrp.cc.o.d"
  "/root/repo/src/core/history.cc" "src/core/CMakeFiles/chirp_core.dir/history.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/history.cc.o.d"
  "/root/repo/src/core/lru.cc" "src/core/CMakeFiles/chirp_core.dir/lru.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/lru.cc.o.d"
  "/root/repo/src/core/plru.cc" "src/core/CMakeFiles/chirp_core.dir/plru.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/plru.cc.o.d"
  "/root/repo/src/core/policy_factory.cc" "src/core/CMakeFiles/chirp_core.dir/policy_factory.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/policy_factory.cc.o.d"
  "/root/repo/src/core/prediction_table.cc" "src/core/CMakeFiles/chirp_core.dir/prediction_table.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/prediction_table.cc.o.d"
  "/root/repo/src/core/random_repl.cc" "src/core/CMakeFiles/chirp_core.dir/random_repl.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/random_repl.cc.o.d"
  "/root/repo/src/core/replacement_policy.cc" "src/core/CMakeFiles/chirp_core.dir/replacement_policy.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/replacement_policy.cc.o.d"
  "/root/repo/src/core/ship.cc" "src/core/CMakeFiles/chirp_core.dir/ship.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/ship.cc.o.d"
  "/root/repo/src/core/srrip.cc" "src/core/CMakeFiles/chirp_core.dir/srrip.cc.o" "gcc" "src/core/CMakeFiles/chirp_core.dir/srrip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chirp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chirp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
