file(REMOVE_RECURSE
  "libchirp_core.a"
)
