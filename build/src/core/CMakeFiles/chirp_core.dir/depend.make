# Empty dependencies file for chirp_core.
# This may be replaced when dependencies are built.
