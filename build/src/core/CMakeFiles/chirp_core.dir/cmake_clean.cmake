file(REMOVE_RECURSE
  "CMakeFiles/chirp_core.dir/chirp.cc.o"
  "CMakeFiles/chirp_core.dir/chirp.cc.o.d"
  "CMakeFiles/chirp_core.dir/drrip.cc.o"
  "CMakeFiles/chirp_core.dir/drrip.cc.o.d"
  "CMakeFiles/chirp_core.dir/ghrp.cc.o"
  "CMakeFiles/chirp_core.dir/ghrp.cc.o.d"
  "CMakeFiles/chirp_core.dir/history.cc.o"
  "CMakeFiles/chirp_core.dir/history.cc.o.d"
  "CMakeFiles/chirp_core.dir/lru.cc.o"
  "CMakeFiles/chirp_core.dir/lru.cc.o.d"
  "CMakeFiles/chirp_core.dir/plru.cc.o"
  "CMakeFiles/chirp_core.dir/plru.cc.o.d"
  "CMakeFiles/chirp_core.dir/policy_factory.cc.o"
  "CMakeFiles/chirp_core.dir/policy_factory.cc.o.d"
  "CMakeFiles/chirp_core.dir/prediction_table.cc.o"
  "CMakeFiles/chirp_core.dir/prediction_table.cc.o.d"
  "CMakeFiles/chirp_core.dir/random_repl.cc.o"
  "CMakeFiles/chirp_core.dir/random_repl.cc.o.d"
  "CMakeFiles/chirp_core.dir/replacement_policy.cc.o"
  "CMakeFiles/chirp_core.dir/replacement_policy.cc.o.d"
  "CMakeFiles/chirp_core.dir/ship.cc.o"
  "CMakeFiles/chirp_core.dir/ship.cc.o.d"
  "CMakeFiles/chirp_core.dir/srrip.cc.o"
  "CMakeFiles/chirp_core.dir/srrip.cc.o.d"
  "libchirp_core.a"
  "libchirp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
