file(REMOVE_RECURSE
  "CMakeFiles/chirp_mem.dir/cache.cc.o"
  "CMakeFiles/chirp_mem.dir/cache.cc.o.d"
  "CMakeFiles/chirp_mem.dir/cache_hierarchy.cc.o"
  "CMakeFiles/chirp_mem.dir/cache_hierarchy.cc.o.d"
  "libchirp_mem.a"
  "libchirp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
