# Empty dependencies file for chirp_mem.
# This may be replaced when dependencies are built.
