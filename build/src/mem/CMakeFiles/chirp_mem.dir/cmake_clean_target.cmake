file(REMOVE_RECURSE
  "libchirp_mem.a"
)
