file(REMOVE_RECURSE
  "libchirp_trace.a"
)
