file(REMOVE_RECURSE
  "CMakeFiles/chirp_trace.dir/synthetic/code_layout.cc.o"
  "CMakeFiles/chirp_trace.dir/synthetic/code_layout.cc.o.d"
  "CMakeFiles/chirp_trace.dir/synthetic/patterns.cc.o"
  "CMakeFiles/chirp_trace.dir/synthetic/patterns.cc.o.d"
  "CMakeFiles/chirp_trace.dir/synthetic/program.cc.o"
  "CMakeFiles/chirp_trace.dir/synthetic/program.cc.o.d"
  "CMakeFiles/chirp_trace.dir/synthetic/workload_factory.cc.o"
  "CMakeFiles/chirp_trace.dir/synthetic/workload_factory.cc.o.d"
  "CMakeFiles/chirp_trace.dir/trace_file.cc.o"
  "CMakeFiles/chirp_trace.dir/trace_file.cc.o.d"
  "CMakeFiles/chirp_trace.dir/workload_suite.cc.o"
  "CMakeFiles/chirp_trace.dir/workload_suite.cc.o.d"
  "libchirp_trace.a"
  "libchirp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
