
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/synthetic/code_layout.cc" "src/trace/CMakeFiles/chirp_trace.dir/synthetic/code_layout.cc.o" "gcc" "src/trace/CMakeFiles/chirp_trace.dir/synthetic/code_layout.cc.o.d"
  "/root/repo/src/trace/synthetic/patterns.cc" "src/trace/CMakeFiles/chirp_trace.dir/synthetic/patterns.cc.o" "gcc" "src/trace/CMakeFiles/chirp_trace.dir/synthetic/patterns.cc.o.d"
  "/root/repo/src/trace/synthetic/program.cc" "src/trace/CMakeFiles/chirp_trace.dir/synthetic/program.cc.o" "gcc" "src/trace/CMakeFiles/chirp_trace.dir/synthetic/program.cc.o.d"
  "/root/repo/src/trace/synthetic/workload_factory.cc" "src/trace/CMakeFiles/chirp_trace.dir/synthetic/workload_factory.cc.o" "gcc" "src/trace/CMakeFiles/chirp_trace.dir/synthetic/workload_factory.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/trace/CMakeFiles/chirp_trace.dir/trace_file.cc.o" "gcc" "src/trace/CMakeFiles/chirp_trace.dir/trace_file.cc.o.d"
  "/root/repo/src/trace/workload_suite.cc" "src/trace/CMakeFiles/chirp_trace.dir/workload_suite.cc.o" "gcc" "src/trace/CMakeFiles/chirp_trace.dir/workload_suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chirp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
