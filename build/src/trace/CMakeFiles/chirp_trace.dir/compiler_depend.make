# Empty compiler generated dependencies file for chirp_trace.
# This may be replaced when dependencies are built.
