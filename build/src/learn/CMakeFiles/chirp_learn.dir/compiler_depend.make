# Empty compiler generated dependencies file for chirp_learn.
# This may be replaced when dependencies are built.
