
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learn/adaline.cc" "src/learn/CMakeFiles/chirp_learn.dir/adaline.cc.o" "gcc" "src/learn/CMakeFiles/chirp_learn.dir/adaline.cc.o.d"
  "/root/repo/src/learn/reuse_dataset.cc" "src/learn/CMakeFiles/chirp_learn.dir/reuse_dataset.cc.o" "gcc" "src/learn/CMakeFiles/chirp_learn.dir/reuse_dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chirp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chirp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
