file(REMOVE_RECURSE
  "libchirp_learn.a"
)
