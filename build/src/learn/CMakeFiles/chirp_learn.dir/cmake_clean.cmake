file(REMOVE_RECURSE
  "CMakeFiles/chirp_learn.dir/adaline.cc.o"
  "CMakeFiles/chirp_learn.dir/adaline.cc.o.d"
  "CMakeFiles/chirp_learn.dir/reuse_dataset.cc.o"
  "CMakeFiles/chirp_learn.dir/reuse_dataset.cc.o.d"
  "libchirp_learn.a"
  "libchirp_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
