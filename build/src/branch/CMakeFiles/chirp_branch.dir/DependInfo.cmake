
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/branch_unit.cc" "src/branch/CMakeFiles/chirp_branch.dir/branch_unit.cc.o" "gcc" "src/branch/CMakeFiles/chirp_branch.dir/branch_unit.cc.o.d"
  "/root/repo/src/branch/btb.cc" "src/branch/CMakeFiles/chirp_branch.dir/btb.cc.o" "gcc" "src/branch/CMakeFiles/chirp_branch.dir/btb.cc.o.d"
  "/root/repo/src/branch/perceptron.cc" "src/branch/CMakeFiles/chirp_branch.dir/perceptron.cc.o" "gcc" "src/branch/CMakeFiles/chirp_branch.dir/perceptron.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chirp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chirp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/chirp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
