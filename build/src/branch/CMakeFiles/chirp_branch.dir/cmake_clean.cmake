file(REMOVE_RECURSE
  "CMakeFiles/chirp_branch.dir/branch_unit.cc.o"
  "CMakeFiles/chirp_branch.dir/branch_unit.cc.o.d"
  "CMakeFiles/chirp_branch.dir/btb.cc.o"
  "CMakeFiles/chirp_branch.dir/btb.cc.o.d"
  "CMakeFiles/chirp_branch.dir/perceptron.cc.o"
  "CMakeFiles/chirp_branch.dir/perceptron.cc.o.d"
  "libchirp_branch.a"
  "libchirp_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
