# Empty dependencies file for chirp_branch.
# This may be replaced when dependencies are built.
