file(REMOVE_RECURSE
  "libchirp_branch.a"
)
