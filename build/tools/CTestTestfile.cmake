# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_synthetic "/root/repo/build/tools/chirp-sim" "--workload" "crypto:1" "--length" "20000" "--no-caches" "--no-branch")
set_tests_properties(cli_synthetic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_policy_and_penalty "/root/repo/build/tools/chirp-sim" "--workload" "db:3" "--policy" "srrip" "--penalty" "240" "--length" "20000" "--no-caches")
set_tests_properties(cli_policy_and_penalty PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_multiprocess "/root/repo/build/tools/chirp-sim" "--workload" "spec:1" "--workload" "web:2" "--quantum" "4000" "--flush-on-switch" "--length" "20000" "--no-caches" "--no-branch")
set_tests_properties(cli_multiprocess PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_extra_policy "/root/repo/build/tools/chirp-sim" "--workload" "sci:4" "--policy" "drrip" "--length" "20000" "--no-caches" "--no-branch")
set_tests_properties(cli_extra_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_policy "/root/repo/build/tools/chirp-sim" "--policy" "nonsense" "--length" "20000")
set_tests_properties(cli_rejects_unknown_policy PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
