# Empty compiler generated dependencies file for chirp-sim.
# This may be replaced when dependencies are built.
