file(REMOVE_RECURSE
  "CMakeFiles/chirp-sim.dir/chirp_sim_cli.cpp.o"
  "CMakeFiles/chirp-sim.dir/chirp_sim_cli.cpp.o.d"
  "chirp-sim"
  "chirp-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
