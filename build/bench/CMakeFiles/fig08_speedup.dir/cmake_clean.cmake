file(REMOVE_RECURSE
  "CMakeFiles/fig08_speedup.dir/fig08_speedup.cpp.o"
  "CMakeFiles/fig08_speedup.dir/fig08_speedup.cpp.o.d"
  "fig08_speedup"
  "fig08_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
