# Empty dependencies file for fig10_penalty_sweep.
# This may be replaced when dependencies are built.
