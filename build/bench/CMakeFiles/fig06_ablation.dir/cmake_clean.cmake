file(REMOVE_RECURSE
  "CMakeFiles/fig06_ablation.dir/fig06_ablation.cpp.o"
  "CMakeFiles/fig06_ablation.dir/fig06_ablation.cpp.o.d"
  "fig06_ablation"
  "fig06_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
