# Empty compiler generated dependencies file for fig06_ablation.
# This may be replaced when dependencies are built.
