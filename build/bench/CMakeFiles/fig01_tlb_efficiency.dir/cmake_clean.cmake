file(REMOVE_RECURSE
  "CMakeFiles/fig01_tlb_efficiency.dir/fig01_tlb_efficiency.cpp.o"
  "CMakeFiles/fig01_tlb_efficiency.dir/fig01_tlb_efficiency.cpp.o.d"
  "fig01_tlb_efficiency"
  "fig01_tlb_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_tlb_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
