file(REMOVE_RECURSE
  "CMakeFiles/fig02_history_length.dir/fig02_history_length.cpp.o"
  "CMakeFiles/fig02_history_length.dir/fig02_history_length.cpp.o.d"
  "fig02_history_length"
  "fig02_history_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_history_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
