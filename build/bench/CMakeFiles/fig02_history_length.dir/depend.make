# Empty dependencies file for fig02_history_length.
# This may be replaced when dependencies are built.
