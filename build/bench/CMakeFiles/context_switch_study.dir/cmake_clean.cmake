file(REMOVE_RECURSE
  "CMakeFiles/context_switch_study.dir/context_switch_study.cpp.o"
  "CMakeFiles/context_switch_study.dir/context_switch_study.cpp.o.d"
  "context_switch_study"
  "context_switch_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_switch_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
