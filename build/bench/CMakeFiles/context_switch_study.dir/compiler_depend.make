# Empty compiler generated dependencies file for context_switch_study.
# This may be replaced when dependencies are built.
