
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extra_policies.cpp" "bench/CMakeFiles/extra_policies.dir/extra_policies.cpp.o" "gcc" "bench/CMakeFiles/extra_policies.dir/extra_policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/chirp_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chirp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/chirp_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/chirp_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/chirp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/chirp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chirp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chirp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
