# Empty dependencies file for extra_policies.
# This may be replaced when dependencies are built.
