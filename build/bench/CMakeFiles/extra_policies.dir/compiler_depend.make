# Empty compiler generated dependencies file for extra_policies.
# This may be replaced when dependencies are built.
