file(REMOVE_RECURSE
  "CMakeFiles/extra_policies.dir/extra_policies.cpp.o"
  "CMakeFiles/extra_policies.dir/extra_policies.cpp.o.d"
  "extra_policies"
  "extra_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
