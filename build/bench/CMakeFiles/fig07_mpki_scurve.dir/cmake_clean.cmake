file(REMOVE_RECURSE
  "CMakeFiles/fig07_mpki_scurve.dir/fig07_mpki_scurve.cpp.o"
  "CMakeFiles/fig07_mpki_scurve.dir/fig07_mpki_scurve.cpp.o.d"
  "fig07_mpki_scurve"
  "fig07_mpki_scurve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_mpki_scurve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
