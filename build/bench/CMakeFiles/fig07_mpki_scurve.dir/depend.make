# Empty dependencies file for fig07_mpki_scurve.
# This may be replaced when dependencies are built.
