# Empty compiler generated dependencies file for fig09_table_size.
# This may be replaced when dependencies are built.
