file(REMOVE_RECURSE
  "CMakeFiles/fig09_table_size.dir/fig09_table_size.cpp.o"
  "CMakeFiles/fig09_table_size.dir/fig09_table_size.cpp.o.d"
  "fig09_table_size"
  "fig09_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
