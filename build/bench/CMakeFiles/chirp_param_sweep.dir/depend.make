# Empty dependencies file for chirp_param_sweep.
# This may be replaced when dependencies are built.
