file(REMOVE_RECURSE
  "CMakeFiles/chirp_param_sweep.dir/chirp_param_sweep.cpp.o"
  "CMakeFiles/chirp_param_sweep.dir/chirp_param_sweep.cpp.o.d"
  "chirp_param_sweep"
  "chirp_param_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_param_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
