file(REMOVE_RECURSE
  "CMakeFiles/fig11_table_access_rate.dir/fig11_table_access_rate.cpp.o"
  "CMakeFiles/fig11_table_access_rate.dir/fig11_table_access_rate.cpp.o.d"
  "fig11_table_access_rate"
  "fig11_table_access_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_table_access_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
