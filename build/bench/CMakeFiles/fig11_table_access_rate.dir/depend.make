# Empty dependencies file for fig11_table_access_rate.
# This may be replaced when dependencies are built.
