# Empty compiler generated dependencies file for mixed_page_study.
# This may be replaced when dependencies are built.
