file(REMOVE_RECURSE
  "CMakeFiles/mixed_page_study.dir/mixed_page_study.cpp.o"
  "CMakeFiles/mixed_page_study.dir/mixed_page_study.cpp.o.d"
  "mixed_page_study"
  "mixed_page_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_page_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
