# Empty compiler generated dependencies file for opt_bound.
# This may be replaced when dependencies are built.
