file(REMOVE_RECURSE
  "CMakeFiles/opt_bound.dir/opt_bound.cpp.o"
  "CMakeFiles/opt_bound.dir/opt_bound.cpp.o.d"
  "opt_bound"
  "opt_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
