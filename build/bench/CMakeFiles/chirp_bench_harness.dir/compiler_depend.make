# Empty compiler generated dependencies file for chirp_bench_harness.
# This may be replaced when dependencies are built.
