file(REMOVE_RECURSE
  "CMakeFiles/chirp_bench_harness.dir/harness.cc.o"
  "CMakeFiles/chirp_bench_harness.dir/harness.cc.o.d"
  "libchirp_bench_harness.a"
  "libchirp_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
