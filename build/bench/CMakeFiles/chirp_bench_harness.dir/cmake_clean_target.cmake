file(REMOVE_RECURSE
  "libchirp_bench_harness.a"
)
