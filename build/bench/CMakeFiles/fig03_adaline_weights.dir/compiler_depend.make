# Empty compiler generated dependencies file for fig03_adaline_weights.
# This may be replaced when dependencies are built.
