file(REMOVE_RECURSE
  "CMakeFiles/fig03_adaline_weights.dir/fig03_adaline_weights.cpp.o"
  "CMakeFiles/fig03_adaline_weights.dir/fig03_adaline_weights.cpp.o.d"
  "fig03_adaline_weights"
  "fig03_adaline_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_adaline_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
