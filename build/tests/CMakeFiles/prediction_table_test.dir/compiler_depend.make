# Empty compiler generated dependencies file for prediction_table_test.
# This may be replaced when dependencies are built.
