file(REMOVE_RECURSE
  "CMakeFiles/prediction_table_test.dir/prediction_table_test.cc.o"
  "CMakeFiles/prediction_table_test.dir/prediction_table_test.cc.o.d"
  "prediction_table_test"
  "prediction_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prediction_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
