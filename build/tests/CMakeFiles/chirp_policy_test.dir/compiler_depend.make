# Empty compiler generated dependencies file for chirp_policy_test.
# This may be replaced when dependencies are built.
