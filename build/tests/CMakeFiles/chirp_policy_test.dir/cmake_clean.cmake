file(REMOVE_RECURSE
  "CMakeFiles/chirp_policy_test.dir/chirp_policy_test.cc.o"
  "CMakeFiles/chirp_policy_test.dir/chirp_policy_test.cc.o.d"
  "chirp_policy_test"
  "chirp_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
