file(REMOVE_RECURSE
  "CMakeFiles/srrip_test.dir/srrip_test.cc.o"
  "CMakeFiles/srrip_test.dir/srrip_test.cc.o.d"
  "srrip_test"
  "srrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
