# Empty dependencies file for srrip_test.
# This may be replaced when dependencies are built.
