file(REMOVE_RECURSE
  "CMakeFiles/ship_test.dir/ship_test.cc.o"
  "CMakeFiles/ship_test.dir/ship_test.cc.o.d"
  "ship_test"
  "ship_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ship_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
