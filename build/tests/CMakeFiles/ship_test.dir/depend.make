# Empty dependencies file for ship_test.
# This may be replaced when dependencies are built.
