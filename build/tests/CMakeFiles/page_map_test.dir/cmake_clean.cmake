file(REMOVE_RECURSE
  "CMakeFiles/page_map_test.dir/page_map_test.cc.o"
  "CMakeFiles/page_map_test.dir/page_map_test.cc.o.d"
  "page_map_test"
  "page_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
