file(REMOVE_RECURSE
  "CMakeFiles/multi_process_test.dir/multi_process_test.cc.o"
  "CMakeFiles/multi_process_test.dir/multi_process_test.cc.o.d"
  "multi_process_test"
  "multi_process_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
