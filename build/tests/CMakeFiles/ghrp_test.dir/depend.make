# Empty dependencies file for ghrp_test.
# This may be replaced when dependencies are built.
