file(REMOVE_RECURSE
  "CMakeFiles/ghrp_test.dir/ghrp_test.cc.o"
  "CMakeFiles/ghrp_test.dir/ghrp_test.cc.o.d"
  "ghrp_test"
  "ghrp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghrp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
