file(REMOVE_RECURSE
  "CMakeFiles/set_assoc_test.dir/set_assoc_test.cc.o"
  "CMakeFiles/set_assoc_test.dir/set_assoc_test.cc.o.d"
  "set_assoc_test"
  "set_assoc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_assoc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
