# Empty dependencies file for lru_policy_test.
# This may be replaced when dependencies are built.
