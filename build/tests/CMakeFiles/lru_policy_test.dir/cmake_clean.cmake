file(REMOVE_RECURSE
  "CMakeFiles/lru_policy_test.dir/lru_policy_test.cc.o"
  "CMakeFiles/lru_policy_test.dir/lru_policy_test.cc.o.d"
  "lru_policy_test"
  "lru_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lru_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
