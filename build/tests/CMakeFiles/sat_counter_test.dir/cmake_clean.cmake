file(REMOVE_RECURSE
  "CMakeFiles/sat_counter_test.dir/sat_counter_test.cc.o"
  "CMakeFiles/sat_counter_test.dir/sat_counter_test.cc.o.d"
  "sat_counter_test"
  "sat_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
