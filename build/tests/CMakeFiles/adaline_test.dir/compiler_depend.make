# Empty compiler generated dependencies file for adaline_test.
# This may be replaced when dependencies are built.
