file(REMOVE_RECURSE
  "CMakeFiles/adaline_test.dir/adaline_test.cc.o"
  "CMakeFiles/adaline_test.dir/adaline_test.cc.o.d"
  "adaline_test"
  "adaline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
