/**
 * @file
 * chirp-sim: command-line driver for one-off simulations.
 *
 * Runs a synthetic workload or an archived trace file through the
 * Table II machine under any replacement policy and prints the full
 * statistics block.  The scriptable face of the library.
 *
 * Usage:
 *   chirp-sim [options]
 *     --workload CAT:SEED[:SCALE]  synthetic workload (cat: spec, db,
 *                                  crypto, sci, web, bigdata); may be
 *                                  given multiple times for a
 *                                  multi-process run
 *     --trace FILE                 archived .chtr trace instead
 *     --policy NAME                lru|random|srrip|ship|ghrp|chirp|
 *                                  drrip|plru       [default chirp]
 *     --length N                   instructions per workload [500000]
 *     --penalty N                  L2 TLB miss penalty in cycles [150]
 *     --entries N / --assoc N      L2 TLB geometry [1024 / 8]
 *     --quantum N                  context-switch quantum [50000]
 *     --flush-on-switch            flush TLBs at context switches
 *     --no-caches / --no-branch    disable timing components
 *     --help
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_factory.hh"
#include "sim/simulator.hh"
#include "trace/trace_file.hh"
#include "trace/synthetic/workload_factory.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace chirp;

namespace
{

/** Parse "cat:seed[:scale]" into a WorkloadConfig. */
WorkloadConfig
parseWorkloadSpec(const std::string &spec, InstCount length)
{
    WorkloadConfig config;
    config.length = length;
    const auto first = spec.find(':');
    const std::string cat = spec.substr(0, first);
    bool found = false;
    const auto ncat = static_cast<unsigned>(Category::NumCategories);
    for (unsigned c = 0; c < ncat; ++c) {
        if (cat == categoryName(static_cast<Category>(c))) {
            config.category = static_cast<Category>(c);
            found = true;
        }
    }
    if (!found)
        chirp_fatal("unknown workload category '", cat, "'");
    if (first == std::string::npos)
        chirp_fatal("workload spec '", spec, "' needs CAT:SEED");
    const std::string rest = spec.substr(first + 1);
    const auto second = rest.find(':');
    config.seed = std::strtoull(rest.substr(0, second).c_str(),
                                nullptr, 10);
    if (second != std::string::npos)
        config.scale = std::strtod(rest.substr(second + 1).c_str(),
                                   nullptr);
    return config;
}

void
printStats(const SimStats &stats, const std::string &policy)
{
    TableFormatter table;
    table.header({"metric", "value"});
    table.row({"policy", policy});
    table.row({"instructions (measured)",
               TableFormatter::num(stats.instructions)});
    table.row({"warmup instructions",
               TableFormatter::num(stats.warmupInstructions)});
    table.row({"cycles", TableFormatter::num(stats.cycles)});
    table.row({"IPC", TableFormatter::num(stats.ipc(), 4)});
    table.row({"L1 i-TLB miss rate",
               TableFormatter::num(
                   stats.l1iTlbAccesses
                       ? 100.0 * stats.l1iTlbMisses / stats.l1iTlbAccesses
                       : 0.0,
                   2) + "%"});
    table.row({"L1 d-TLB miss rate",
               TableFormatter::num(
                   stats.l1dTlbAccesses
                       ? 100.0 * stats.l1dTlbMisses / stats.l1dTlbAccesses
                       : 0.0,
                   2) + "%"});
    table.row({"L2 TLB accesses",
               TableFormatter::num(stats.l2TlbAccesses)});
    table.row({"L2 TLB misses", TableFormatter::num(stats.l2TlbMisses)});
    table.row({"L2 TLB MPKI", TableFormatter::num(stats.mpki(), 4)});
    table.row({"L2 TLB efficiency",
               TableFormatter::num(stats.l2Efficiency, 4)});
    table.row({"branch MPKI", TableFormatter::num(stats.branchMpki(), 3)});
    table.row({"pred-table accesses / L2 access",
               TableFormatter::num(stats.tableAccessRate(), 4)});
    table.row({"walk cycles", TableFormatter::num(stats.walkCycles)});
    table.print();
}

void
usage()
{
    std::puts("usage: chirp-sim [--workload CAT:SEED[:SCALE]]... "
              "[--trace FILE] [--policy NAME]\n"
              "  [--length N] [--penalty N] [--entries N] [--assoc N]\n"
              "  [--quantum N] [--flush-on-switch] [--no-caches] "
              "[--no-branch]");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workload_specs;
    std::string trace_path;
    std::string policy = "chirp";
    InstCount length = 500'000;
    SimConfig config;
    InstCount quantum = 50'000;
    bool flush_on_switch = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                chirp_fatal("option ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--workload")
            workload_specs.push_back(value());
        else if (arg == "--trace")
            trace_path = value();
        else if (arg == "--policy")
            policy = value();
        else if (arg == "--length")
            length = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--penalty")
            config.pageWalkLatency =
                std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--entries")
            config.tlbs.l2.entries = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--assoc")
            config.tlbs.l2.assoc = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--quantum")
            quantum = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--flush-on-switch")
            flush_on_switch = true;
        else if (arg == "--no-caches")
            config.simulateCaches = false;
        else if (arg == "--no-branch")
            config.simulateBranch = false;
        else if (arg == "--help") {
            usage();
            return 0;
        } else {
            usage();
            chirp_fatal("unknown option '", arg, "'");
        }
    }
    if (workload_specs.empty() && trace_path.empty())
        workload_specs.push_back("spec:1");
    if (!workload_specs.empty() && !trace_path.empty())
        chirp_fatal("--workload and --trace are mutually exclusive");

    Simulator sim(config,
                  makePolicy(policy,
                             config.tlbs.l2.entries /
                                 config.tlbs.l2.assoc,
                             config.tlbs.l2.assoc));

    SimStats stats;
    if (!trace_path.empty()) {
        TraceFileSource source(trace_path);
        std::printf("trace: %s (%llu records)\n\n", trace_path.c_str(),
                    static_cast<unsigned long long>(source.count()));
        stats = sim.run(source);
    } else {
        std::vector<std::unique_ptr<Program>> programs;
        std::vector<TraceSource *> sources;
        for (const auto &spec : workload_specs) {
            programs.push_back(
                buildWorkload(parseWorkloadSpec(spec, length)));
            sources.push_back(programs.back().get());
            std::printf("workload: %s (%llu data pages)\n",
                        programs.back()->name().c_str(),
                        static_cast<unsigned long long>(
                            programs.back()->dataFootprintPages()));
        }
        std::printf("\n");
        stats = sources.size() == 1
                    ? sim.run(*sources[0])
                    : sim.runInterleaved(sources, quantum,
                                         flush_on_switch);
    }
    printStats(stats, policy);
    return 0;
}
