/**
 * @file
 * Deterministic fuzz driver for the hardened trace-ingest front-end.
 *
 * The contract under test: NO byte stream may crash, hang, or OOM the
 * ingest path.  The only acceptable failure is a thrown IngestError;
 * everything else (any other exception, a signal, an overrun the
 * sanitizers catch) is a bug, and the driver prints a reproducer
 * (seed + iteration) before exiting non-zero.
 *
 * Modes:
 *
 *   trace_fuzz --make-corpus DIR
 *       Write the checked-in corpus: well-formed ChampSim/CVP
 *       fixtures, a cross-format equivalent pair (equiv.champsim /
 *       equiv.cvp encode the same canonical stream, for the CI CSV
 *       byte-equality leg), and the classic hostile shapes
 *       (truncations, bit-flips, length-field lies, an empty file, a
 *       header with no body, plain garbage).
 *
 *   trace_fuzz --corpus DIR
 *       Ingest every regular file in DIR under the auto, champsim and
 *       cvp front-ends; assert the contract on each.
 *
 *   trace_fuzz [--iters N] [--seconds S] [--seed X]
 *       Structure-aware mutation loop: start from valid streams and
 *       apply random truncations, bit-flips, length-field lies,
 *       insertions, deletions and splices, then ingest the mutant
 *       under all three front-ends.  Fully deterministic for a given
 *       seed.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/ingest/ingest.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace
{

using namespace chirp;

/** Canonical 48-bit (sign-clear) address from one raw draw. */
Addr
canonical(std::uint64_t raw)
{
    return raw & 0x0000'7fff'ffff'ffffull;
}

TraceRecord
randomRecord(Rng &rng)
{
    TraceRecord rec;
    rec.pc = canonical(rng.next()) | 1; // nonzero
    rec.cls = static_cast<InstClass>(
        rng.below(static_cast<std::uint64_t>(InstClass::NumClasses)));
    if (isMemory(rec.cls))
        rec.effAddr = canonical(rng.next());
    if (isBranch(rec.cls)) {
        rec.taken = rec.cls != InstClass::CondBranch || rng.chance(0.6);
        rec.target = canonical(rng.next()) | 1;
    }
    return rec;
}

std::string
makeChampSim(Rng &rng, std::size_t records)
{
    std::string out;
    for (std::size_t i = 0; i < records; ++i)
        appendChampSimRecord(out, randomRecord(rng));
    return out;
}

std::string
makeCvp(Rng &rng, std::size_t records)
{
    std::string out;
    appendCvpHeader(out, records);
    for (std::size_t i = 0; i < records; ++i)
        appendCvpRecord(out, randomRecord(rng));
    return out;
}

/**
 * Ingest @p data under one explicit format; only IngestError may
 * escape.  Returns false (after printing the reproducer context) on a
 * contract violation.
 */
bool
ingestOne(const std::string &data, ExternalTraceFormat format,
          const std::string &context)
{
    // Tight budgets keep a pathological mutant from dominating the
    // run; the contract must hold under any budget.
    IngestLimits limits;
    limits.maxRecords = 1 << 20;
    limits.maxResidentBytes = 64u << 20;
    limits.badRecordBudget = 256;
    limits.maxWallMs = 10'000;
    try {
        ingestTraceBytes(data.data(), data.size(), context, limits,
                         format);
    } catch (const IngestError &) {
        // The one sanctioned failure mode.
    } catch (const std::exception &err) {
        std::fprintf(stderr,
                     "CONTRACT VIOLATION: %s (format %s, %zu bytes) "
                     "escaped with %s\n",
                     context.c_str(), externalTraceFormatName(format),
                     data.size(), err.what());
        return false;
    } catch (...) {
        std::fprintf(stderr,
                     "CONTRACT VIOLATION: %s (format %s, %zu bytes) "
                     "threw a non-std exception\n",
                     context.c_str(), externalTraceFormatName(format),
                     data.size());
        return false;
    }
    return true;
}

bool
ingestAllFormats(const std::string &data, const std::string &context)
{
    bool ok = true;
    for (const ExternalTraceFormat format :
         {ExternalTraceFormat::Auto, ExternalTraceFormat::ChampSim,
          ExternalTraceFormat::Cvp})
        ok = ingestOne(data, format, context) && ok;
    return ok;
}

void
writeFile(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size()));
    if (!out)
        chirp_fatal("cannot write corpus file '", path, "'");
}

int
makeCorpus(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        chirp_fatal("cannot create corpus dir '", dir, "'");

    Rng rng(0x43565031ull /* "CVP1" */);
    const std::string champsim = makeChampSim(rng, 256);
    const std::string cvp = makeCvp(rng, 256);
    writeFile(dir + "/valid.champsim", champsim);
    writeFile(dir + "/valid.cvp", cvp);

    // The equivalence pair: both files encode the identical canonical
    // stream, so every simulator statistic — and therefore every CSV
    // byte — must match across the two front-ends.
    std::string equiv_champsim;
    std::string equiv_cvp;
    appendCvpHeader(equiv_cvp, 512);
    for (std::size_t i = 0; i < 512; ++i) {
        const TraceRecord rec = champSimCanonical(randomRecord(rng));
        appendChampSimRecord(equiv_champsim, rec);
        appendCvpRecord(equiv_cvp, rec);
    }
    writeFile(dir + "/equiv.champsim", equiv_champsim);
    writeFile(dir + "/equiv.cvp", equiv_cvp);

    // Hostile shapes.
    writeFile(dir + "/truncated.champsim",
              champsim.substr(0, champsim.size() - 17));
    writeFile(dir + "/truncated.cvp",
              cvp.substr(0, cvp.size() - 5));
    std::string bitflip = cvp;
    for (std::size_t at = 64; at < bitflip.size(); at += 97)
        bitflip[at] = static_cast<char>(bitflip[at] ^ 0x40);
    writeFile(dir + "/bitflip.cvp", bitflip);
    // Length-field lies: a register count far past the record bound,
    // and a declared record count of ~4 billion over an empty body.
    std::string lenlie;
    appendCvpHeader(lenlie, 3);
    appendCvpRecord(lenlie, randomRecord(rng));
    lenlie += '\x11';                   // pc fragment...
    lenlie.append(7, '\x00');
    lenlie += static_cast<char>(0);     // cls Alu
    lenlie += static_cast<char>(0);     // flags
    lenlie += static_cast<char>(0xff);  // nRegs = 255: impossible
    appendCvpRecord(lenlie, randomRecord(rng));
    writeFile(dir + "/lenlie.cvp", lenlie);
    std::string huge_count;
    appendCvpHeader(huge_count, 0xffff'ffffull);
    writeFile(dir + "/header-only.cvp", huge_count);
    writeFile(dir + "/empty.bin", "");
    std::string garbage;
    for (std::size_t i = 0; i < 4096; ++i)
        garbage += static_cast<char>(rng.next() & 0xff);
    writeFile(dir + "/garbage.bin", garbage); // 4096 % 64 == 0: sniffs
                                              // as ChampSim, all bad
    std::printf("wrote corpus to %s\n", dir.c_str());
    return 0;
}

int
runCorpus(const std::string &dir)
{
    std::size_t files = 0;
    bool ok = true;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        std::ifstream in(entry.path(), std::ios::binary);
        std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        ok = ingestAllFormats(data, entry.path().string()) && ok;
        ++files;
    }
    if (files == 0)
        chirp_fatal("corpus dir '", dir, "' holds no files");
    std::printf("corpus: %zu files x 3 formats, %s\n", files,
                ok ? "contract held" : "CONTRACT VIOLATED");
    return ok ? 0 : 1;
}

/** Apply one random structure-aware mutation to @p data. */
void
mutate(std::string &data, Rng &rng)
{
    switch (rng.below(7)) {
      case 0: // truncate (boundary-biased: multiples of 8 often)
        if (!data.empty()) {
            std::uint64_t at = rng.below(data.size());
            if (rng.chance(0.5))
                at &= ~7ull;
            data.resize(at);
        }
        break;
      case 1: // bit-flip a run
        if (!data.empty()) {
            const std::size_t n = 1 + rng.below(8);
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t at = rng.below(data.size());
                data[at] = static_cast<char>(
                    data[at] ^ (1u << rng.below(8)));
            }
        }
        break;
      case 2: // length-field lie: stamp extreme values anywhere
        if (data.size() >= 8) {
            const std::size_t at = rng.below(data.size() - 7);
            const std::uint64_t lie =
                rng.chance(0.5) ? 0xffff'ffff'ffff'ffffull
                                : (rng.chance(0.5) ? 0 : 4ull << 30);
            std::memcpy(&data[at], &lie, 8);
        }
        break;
      case 3: // insert a run (shifts every later record boundary)
        {
            const std::size_t at =
                data.empty() ? 0 : rng.below(data.size() + 1);
            const std::size_t n = 1 + rng.below(64);
            std::string run;
            for (std::size_t i = 0; i < n; ++i)
                run += static_cast<char>(rng.next() & 0xff);
            data.insert(at, run);
        }
        break;
      case 4: // delete a run
        if (!data.empty()) {
            const std::size_t at = rng.below(data.size());
            data.erase(at, 1 + rng.below(64));
        }
        break;
      case 5: // splice: duplicate one chunk over another
        if (data.size() >= 2) {
            const std::size_t from = rng.below(data.size());
            const std::size_t to = rng.below(data.size());
            const std::size_t n =
                1 + rng.below(std::min<std::size_t>(
                        128, data.size() - std::max(from, to)));
            std::memmove(&data[to], &data[from], n);
        }
        break;
      case 6: // zero a run (fake padding)
        if (!data.empty()) {
            const std::size_t at = rng.below(data.size());
            const std::size_t n = std::min<std::size_t>(
                1 + rng.below(64), data.size() - at);
            std::memset(&data[at], 0, n);
        }
        break;
    }
}

int
runMutations(std::uint64_t iters, std::uint64_t seconds,
             std::uint64_t seed)
{
    Rng corpus_rng(seed ^ 0x9e3779b97f4a7c15ull);
    const std::vector<std::string> bases = {
        makeChampSim(corpus_rng, 128),
        makeCvp(corpus_rng, 128),
        makeCvp(corpus_rng, 1),
        std::string(),
    };
    Rng rng(seed);
    const std::time_t deadline =
        seconds ? std::time(nullptr)
                      + static_cast<std::time_t>(seconds)
                : 0;
    std::uint64_t done = 0;
    for (; done < iters || (deadline && std::time(nullptr) < deadline);
         ++done) {
        std::string data = bases[rng.below(bases.size())];
        const std::size_t rounds = 1 + rng.below(4);
        for (std::size_t i = 0; i < rounds; ++i)
            mutate(data, rng);
        std::string context = "mutation iter ";
        context += std::to_string(done);
        context += " (seed ";
        context += std::to_string(seed);
        context += ")";
        if (!ingestAllFormats(data, context)) {
            std::fprintf(stderr,
                         "reproduce with: trace_fuzz --iters %llu "
                         "--seed %llu\n",
                         static_cast<unsigned long long>(done + 1),
                         static_cast<unsigned long long>(seed));
            return 1;
        }
    }
    std::printf("fuzz: %llu mutants x 3 formats, contract held "
                "(seed %llu)\n",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(seed));
    return 0;
}

std::uint64_t
parseU64(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        chirp_fatal(flag, " expects a non-negative integer, got '",
                    text, "'");
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string make_corpus;
    std::string corpus;
    std::uint64_t iters = 1000;
    std::uint64_t seconds = 0;
    std::uint64_t seed = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                chirp_fatal(flag, " needs a value");
            return argv[++i];
        };
        if (arg == "--make-corpus")
            make_corpus = value("--make-corpus");
        else if (arg == "--corpus")
            corpus = value("--corpus");
        else if (arg == "--iters")
            iters = parseU64("--iters", value("--iters"));
        else if (arg == "--seconds")
            seconds = parseU64("--seconds", value("--seconds"));
        else if (arg == "--seed")
            seed = parseU64("--seed", value("--seed"));
        else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--make-corpus DIR] [--corpus DIR]\n"
                "       [--iters N] [--seconds S] [--seed X]\n",
                argv[0]);
            return 0;
        } else {
            chirp_fatal("unknown argument '", arg,
                        "' (try --help)");
        }
    }
    if (!make_corpus.empty())
        return makeCorpus(make_corpus);
    if (!corpus.empty())
        return runCorpus(corpus);
    return runMutations(iters, seconds, seed);
}
