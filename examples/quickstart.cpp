/**
 * @file
 * Quickstart: build a workload, simulate the Table II machine with
 * LRU and with CHiRP in the L2 TLB, and compare.
 *
 * This is the smallest end-to-end tour of the public API:
 *   workload -> policy -> simulator -> stats.
 */

#include <cstdio>

#include "core/policy_factory.hh"
#include "sim/simulator.hh"
#include "trace/synthetic/workload_factory.hh"
#include "util/table.hh"

using namespace chirp;

int
main()
{
    // 1. A synthetic SPEC-style workload (one of the six paper
    //    categories), 400k instructions, fixed seed.  Per-workload
    //    results vary widely — suite averages are the real metric
    //    (see examples/policy_explorer and the benches).
    WorkloadConfig workload;
    workload.category = Category::Spec;
    workload.seed = 21;
    workload.length = 400'000;

    // 2. Simulate it twice: L2 TLB under LRU, then under CHiRP.
    SimConfig config; // Table II defaults, 150-cycle walk penalty
    TableFormatter table;
    table.header({"policy", "L2 TLB MPKI", "IPC", "table accesses/TLB "
                  "access"});

    SimStats lru_stats;
    for (const PolicyKind kind : {PolicyKind::Lru, PolicyKind::Chirp}) {
        const auto program = buildWorkload(workload);
        Simulator sim(config,
                      makePolicy(kind, config.tlbs.l2.entries /
                                           config.tlbs.l2.assoc,
                                 config.tlbs.l2.assoc));
        const SimStats stats = sim.run(*program);
        if (kind == PolicyKind::Lru)
            lru_stats = stats;
        table.row({policyKindName(kind),
                   TableFormatter::num(stats.mpki(), 3),
                   TableFormatter::num(stats.ipc(), 3),
                   TableFormatter::num(stats.tableAccessRate(), 3)});

        if (kind == PolicyKind::Chirp) {
            const double reduction =
                (1.0 - stats.mpki() / lru_stats.mpki()) * 100.0;
            const double speedup =
                (stats.ipc() / lru_stats.ipc() - 1.0) * 100.0;
            std::printf("workload %s: CHiRP reduces L2 TLB MPKI by "
                        "%.1f%% and speeds up execution by %.2f%%\n\n",
                        program->name().c_str(), reduction, speedup);
        }
    }
    table.print();
    return 0;
}
