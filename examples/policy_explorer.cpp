/**
 * @file
 * Policy explorer: run all six replacement policies over a small
 * suite and print per-category and overall metrics.
 *
 * Environment knobs (shared with the benches):
 *   CHIRP_SUITE_SIZE  workloads in the suite   (default 24 here)
 *   CHIRP_TRACE_LEN   instructions per trace   (default 500000)
 *   CHIRP_SEED        master seed
 */

#include <cstdio>
#include <map>
#include <vector>

#include "sim/runner.hh"
#include "util/table.hh"

using namespace chirp;

int
main()
{
    const SuiteOptions options = suiteOptionsFromEnv(24);
    const auto suite = makeSuite(options);
    std::printf("suite: %zu workloads x %llu instructions\n\n",
                suite.size(),
                static_cast<unsigned long long>(options.traceLength));

    SimConfig config;
    Runner runner(config);

    std::map<PolicyKind, std::vector<WorkloadResult>> results;
    for (const PolicyKind kind : allPolicyKinds()) {
        results[kind] = runner.runSuite(
            suite, Runner::factoryFor(kind), policyKindName(kind));
    }
    const auto &lru = results[PolicyKind::Lru];

    // Overall comparison (the Fig 7/8/11 headline metrics).
    TableFormatter table;
    table.header({"policy", "avg MPKI", "MPKI red. %", "speedup %",
                  "table acc/TLB acc", "efficiency gain %"});
    for (const PolicyKind kind : allPolicyKinds()) {
        const auto &res = results[kind];
        table.row({policyKindName(kind),
                   TableFormatter::num(averageMpki(res), 3),
                   TableFormatter::num(mpkiReductionPct(lru, res), 2),
                   TableFormatter::num(
                       speedupPct(lru, res, config.pageWalkLatency), 2),
                   TableFormatter::num(meanTableAccessRate(res), 3),
                   TableFormatter::num(efficiencyGainPct(lru, res), 2)});
    }
    table.print();

    // Per-category MPKI breakdown.
    std::printf("\nper-category average L2 TLB MPKI:\n");
    TableFormatter cat_table;
    std::vector<std::string> header = {"category"};
    for (const PolicyKind kind : allPolicyKinds())
        header.push_back(policyKindName(kind));
    header.push_back("ipc(lru)");
    cat_table.header(header);
    for (unsigned c = 0; c < static_cast<unsigned>(Category::NumCategories);
         ++c) {
        const auto category = static_cast<Category>(c);
        std::vector<std::string> row = {categoryName(category)};
        double lru_ipc = 0.0;
        int n = 0;
        for (const PolicyKind kind : allPolicyKinds()) {
            double sum = 0.0;
            int count = 0;
            for (const auto &r : results[kind]) {
                if (r.workload.category != category)
                    continue;
                sum += r.stats.mpki();
                ++count;
                if (kind == PolicyKind::Lru) {
                    lru_ipc += r.stats.ipc();
                    ++n;
                }
            }
            row.push_back(TableFormatter::num(count ? sum / count : 0.0,
                                              3));
        }
        row.push_back(TableFormatter::num(n ? lru_ipc / n : 0.0, 3));
        cat_table.row(row);
    }
    cat_table.print();
    return 0;
}
