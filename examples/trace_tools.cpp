/**
 * @file
 * Trace tools: generate a synthetic workload, archive it to the
 * binary trace format, inspect the file, and re-simulate from it —
 * the full trace I/O API in one walkthrough.
 *
 * Usage: trace_tools [output.chtr]
 */

#include <cstdio>
#include <map>

#include "core/policy_factory.hh"
#include "sim/simulator.hh"
#include "trace/trace_file.hh"
#include "trace/synthetic/workload_factory.hh"
#include "util/table.hh"

using namespace chirp;

int
main(int argc, char **argv)
{
    const std::string path = argc > 1 ? argv[1] : "example_trace.chtr";

    // 1. Generate a database-style workload and archive it.
    WorkloadConfig workload;
    workload.category = Category::Database;
    workload.seed = 2024;
    workload.length = 200'000;
    {
        const auto program = buildWorkload(workload);
        std::printf("generating %llu instructions of '%s' "
                    "(%llu data pages, %llu code pages)...\n",
                    static_cast<unsigned long long>(program->length()),
                    program->name().c_str(),
                    static_cast<unsigned long long>(
                        program->dataFootprintPages()),
                    static_cast<unsigned long long>(
                        program->layout().codePages()));
        TraceFileWriter writer(path);
        TraceRecord rec;
        while (program->next(rec))
            writer.append(rec);
        writer.close();
        std::printf("wrote %llu records to %s\n\n",
                    static_cast<unsigned long long>(writer.count()),
                    path.c_str());
    }

    // 2. Inspect: instruction-class histogram and footprint.
    {
        TraceFileSource source(path);
        std::map<InstClass, std::uint64_t> classes;
        std::map<Addr, std::uint64_t> pages;
        TraceRecord rec;
        while (source.next(rec)) {
            ++classes[rec.cls];
            if (isMemory(rec.cls))
                ++pages[pageNumber(rec.effAddr)];
        }
        TableFormatter table;
        table.header({"instruction class", "count", "share %"});
        for (const auto &[cls, count] : classes) {
            table.row({instClassName(cls), TableFormatter::num(count),
                       TableFormatter::num(100.0 * count /
                                               source.count(),
                                           1)});
        }
        table.print();
        std::printf("\ndistinct data pages touched: %zu\n\n",
                    pages.size());
    }

    // 3. Re-simulate from the file (identical to simulating the
    //    generator directly; the integration tests assert this).
    {
        SimConfig config;
        Simulator sim(config,
                      makePolicy(PolicyKind::Chirp,
                                 config.tlbs.l2.entries /
                                     config.tlbs.l2.assoc,
                                 config.tlbs.l2.assoc));
        TraceFileSource source(path);
        const SimStats stats = sim.run(source);
        std::printf("replayed under CHiRP: MPKI %.3f, IPC %.3f, "
                    "table access rate %.3f\n",
                    stats.mpki(), stats.ipc(), stats.tableAccessRate());
    }
    std::remove(path.c_str());
    return 0;
}
