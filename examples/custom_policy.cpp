/**
 * @file
 * Implementing a new replacement policy against the public API — the
 * downstream-user story.
 *
 * The example policy, SLRU ("segmented LRU"), protects entries that
 * have hit at least once: victims are preferred among never-hit
 * entries (probationary segment) before falling back to true LRU.
 * It is a reasonable folk policy to race against CHiRP: it shares
 * the "new entries are suspect" intuition without any prediction
 * tables.  The race result is discussed in EXPERIMENTS.md.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/policy_factory.hh"
#include "sim/runner.hh"
#include "util/table.hh"

using namespace chirp;

namespace
{

/** Segmented-LRU: never-hit entries are evicted first. */
class SlruPolicy : public ReplacementPolicy
{
  public:
    SlruPolicy(std::uint32_t num_sets, std::uint32_t assoc)
        : ReplacementPolicy("slru", num_sets, assoc),
          stack_(num_sets, assoc),
          protected_(static_cast<std::size_t>(num_sets) * assoc, false)
    {
    }

    void
    reset() override
    {
        stack_.reset();
        std::fill(protected_.begin(), protected_.end(), false);
        resetTableCounters();
    }

    void
    onHit(std::uint32_t set, std::uint32_t way,
          const AccessInfo &) override
    {
        stack_.touch(set, way);
        protected_[idx(set, way)] = true;
    }

    std::uint32_t
    selectVictim(std::uint32_t set, const AccessInfo &) override
    {
        // Least-recent probationary entry first; else true LRU.
        std::uint32_t victim = ~0u;
        std::uint32_t deepest = 0;
        for (std::uint32_t way = 0; way < assoc(); ++way) {
            if (protected_[idx(set, way)])
                continue;
            const std::uint32_t pos = stack_.position(set, way);
            if (victim == ~0u || pos > deepest) {
                victim = way;
                deepest = pos;
            }
        }
        return victim != ~0u ? victim : stack_.lruWay(set);
    }

    void
    onFill(std::uint32_t set, std::uint32_t way,
           const AccessInfo &) override
    {
        stack_.touch(set, way);
        protected_[idx(set, way)] = false;
    }

    void
    onInvalidate(std::uint32_t set, std::uint32_t way) override
    {
        stack_.demote(set, way);
        protected_[idx(set, way)] = false;
    }

    std::uint64_t
    storageBits() const override
    {
        return stack_.storageBits() +
               static_cast<std::uint64_t>(numSets()) * assoc();
    }

  private:
    LruStack stack_;
    std::vector<bool> protected_;
};

} // namespace

int
main()
{
    // Race SLRU against the paper's policies on a small suite.
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    Runner runner(config);
    SuiteOptions options = suiteOptionsFromEnv(12);
    options.traceLength = std::min<InstCount>(options.traceLength,
                                              400'000);
    const auto suite = makeSuite(options);

    const auto lru =
        runner.runSuite(suite, Runner::factoryFor(PolicyKind::Lru),
                        "lru");
    const auto slru = runner.runSuite(
        suite,
        [](std::uint32_t sets, std::uint32_t assoc) {
            return std::make_unique<SlruPolicy>(sets, assoc);
        },
        "slru");
    const auto chirp_results = runner.runSuite(
        suite, Runner::factoryFor(PolicyKind::Chirp), "chirp");

    TableFormatter table;
    table.header({"policy", "avg MPKI", "MPKI reduction %",
                  "storage (KB)"});
    table.row({"lru", TableFormatter::num(averageMpki(lru), 3), "0.00",
               TableFormatter::num(makePolicy(PolicyKind::Lru, 128, 8)
                                           ->storageBits() /
                                       8.0 / 1024.0,
                                   2)});
    table.row({"slru (this example)",
               TableFormatter::num(averageMpki(slru), 3),
               TableFormatter::num(mpkiReductionPct(lru, slru), 2),
               TableFormatter::num(
                   SlruPolicy(128, 8).storageBits() / 8.0 / 1024.0, 2)});
    table.row({"chirp", TableFormatter::num(averageMpki(chirp_results), 3),
               TableFormatter::num(mpkiReductionPct(lru, chirp_results), 2),
               TableFormatter::num(makePolicy(PolicyKind::Chirp, 128, 8)
                                           ->storageBits() /
                                       8.0 / 1024.0,
                                   2)});
    table.print();
    std::printf("\nAn honest reproduction finding: on this synthetic "
                "suite SLRU is a\nstrong unpublished baseline — most "
                "dead entries here are never re-hit\nat the L2, so "
                "\"evict never-hit entries first\" rivals prediction "
                "at a\nfraction of the storage.  Where entries see L2 "
                "reuse before dying\n(the paper's Observation 2; the "
                "db/bigdata lagged scans model it),\nSLRU's heuristic "
                "degrades while CHiRP's context prediction holds.\n"
                "See EXPERIMENTS.md for the discussion.\n");
    return 0;
}
